//! # freerider-lint
//!
//! A hermetic, zero-external-dependency static analyzer that turns this
//! workspace's determinism contract into a machine-checked invariant.
//!
//! The whole reproduction stands on one claim: the software-defined IQ
//! substrate behaves identically across seeds and thread counts, so
//! figures are bit-reproducible. The runtime tests assert that
//! *dynamically* (1-vs-4-worker byte equivalence); this crate enforces it
//! *statically*, before the nondeterminism is ever executed — a stray
//! `Instant::now()` in a decoder or a `HashMap` iteration in a report
//! path is a finding, not a flaky figure three PRs later.
//!
//! The analyzer is a hand-rolled Rust [`lexer`] (comments, raw strings,
//! lifetimes-vs-chars handled correctly), an [`items`] pass that parses
//! the token stream into an item tree (`mod`/`fn`/`impl`/`enum`/`use`
//! structure with function-body spans and module paths), and a [`rules`]
//! engine over both:
//!
//! * **D1 `wallclock`** — no `Instant`/`SystemTime` outside the telemetry
//!   timer modules and the bench harness.
//! * **D2 `hash-collections`** — no `HashMap`/`HashSet` in non-test code.
//! * **D3 `env-registry`** — every `FREERIDER_*` knob must be listed in
//!   `freerider-core/src/env.rs`.
//! * **P1 `panic`** — no `unwrap()`/`expect()`/`panic!` in library
//!   non-test code without a justified pragma.
//! * **U1 `unsafe-audit`** — every `unsafe` needs a `// SAFETY:` comment;
//!   unsafe-free crates must `#![forbid(unsafe_code)]`.
//! * **A1 `hot-path-alloc`** — no heap allocation (`Vec::new`, `vec!`,
//!   `Box::new`, `.collect()`, `format!`, …) inside designated RX
//!   hot-path functions; designations come from the built-in
//!   [`rules::HOT_PATHS`] table or a `// lint: hot-path` marker.
//! * **O1 `atomic-ordering`** — `Ordering::Relaxed` only at sanctioned
//!   telemetry/metrics counter sites; `SeqCst` needs a pragma anywhere.
//! * **T1 `thread-containment`** — `std::thread::{spawn,scope,Builder}`
//!   only inside `freerider-rt` and `freerider-serve`.
//! * **E1 `wire-exhaustive`** — every `FrameType` variant has both an
//!   encode site and a decode arm, resolved *across* files.
//!
//! Waivers are per-line pragmas with mandatory reasons
//! (`// lint: allow(panic) — length checked above`); accepted legacy debt
//! lives in a fingerprint [`baseline`] (one stable hash per finding —
//! line-number independent, so refactors that only move code leave the
//! baseline untouched) and the build fails only on *new* violations.
//! Reports come as `file:line: rule: message` text or a schema-tagged
//! JSON document ([`report`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod items;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

use std::io;
use std::path::Path;

/// The outcome of one workspace run: analysis plus baseline verdict.
#[derive(Debug)]
pub struct RunOutcome {
    /// Raw analysis (all findings, pre-baseline).
    pub analysis: rules::Analysis,
    /// Findings weighed against the baseline.
    pub assessment: baseline::Assessment,
}

impl RunOutcome {
    /// True when the run should exit 0: no above-baseline findings.
    pub fn ok(&self) -> bool {
        self.assessment.new.is_empty()
    }
}

/// Analyzes the workspace at `root` against the baseline at
/// `baseline_path` (missing file = empty baseline).
pub fn run(root: &Path, baseline_path: &Path) -> io::Result<RunOutcome> {
    let files = walk::discover(root)?;
    let analysis = rules::analyze(root, &files)?;
    let base = baseline::load(baseline_path)?;
    let assessment = baseline::assess(&analysis.findings, &base);
    Ok(RunOutcome {
        analysis,
        assessment,
    })
}

/// Default baseline location for a workspace root.
pub fn default_baseline_path(root: &Path) -> std::path::PathBuf {
    root.join("lint.baseline")
}
