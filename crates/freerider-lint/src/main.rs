//! The `freerider-lint` binary: walk the workspace, enforce the contract.
//!
//! ```text
//! freerider-lint --workspace [--root DIR] [--baseline FILE] [--json FILE]
//!                [--update-baseline] [--list-rules]
//! ```
//!
//! Exit status: 0 when no *new* (above-baseline) findings, 1 when there
//! are, 2 on usage or I/O errors.

use freerider_lint::{baseline, default_baseline_path, report, run, walk};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    workspace: bool,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    json: Option<PathBuf>,
    update_baseline: bool,
    list_rules: bool,
}

const USAGE: &str = "\
usage: freerider-lint --workspace [options]
       freerider-lint --list-rules

options:
  --workspace          analyze every .rs file of the enclosing workspace
  --root DIR           workspace root (default: walk up from the cwd)
  --baseline FILE      baseline file (default: <root>/lint.baseline)
  --json FILE          also write the machine-readable freerider-lint/1 report
  --update-baseline    rewrite the baseline to match current findings, exit 0
  --list-rules         print the rule catalogue and exit
";

fn parse_args(argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        root: None,
        baseline: None,
        json: None,
        update_baseline: false,
        list_rules: false,
    };
    let mut argv = argv.peekable();
    while let Some(a) = argv.next() {
        let mut path_arg = |name: &str| -> Result<PathBuf, String> {
            argv.next()
                .map(PathBuf::from)
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--root" => args.root = Some(path_arg("--root")?),
            "--baseline" => args.baseline = Some(path_arg("--baseline")?),
            "--json" => args.json = Some(path_arg("--json")?),
            "--update-baseline" => args.update_baseline = true,
            "--list-rules" => args.list_rules = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if !args.workspace && !args.list_rules {
        return Err("nothing to do: pass --workspace or --list-rules".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("freerider-lint: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        print!("{}", report::rule_catalogue());
        return ExitCode::SUCCESS;
    }
    match run_workspace(&args) {
        Ok(ok) => {
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("freerider-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_workspace(args: &Args) -> Result<bool, String> {
    let root = match &args.root {
        Some(r) => r.clone(),
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
            walk::find_root(&cwd)
                .ok_or("no enclosing workspace (no Cargo.toml with [workspace]); use --root")?
        }
    };
    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| default_baseline_path(&root));

    let outcome =
        run(&root, &baseline_path).map_err(|e| format!("analyzing {}: {e}", root.display()))?;

    if args.update_baseline {
        baseline::save(&baseline_path, &outcome.analysis.findings)
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        println!(
            "freerider-lint: baseline updated ({} finding(s) accepted) at {}",
            outcome.analysis.findings.len(),
            baseline_path.display()
        );
        return Ok(true);
    }

    if let Some(json_path) = &args.json {
        let doc = report::json(
            &root.display().to_string(),
            &outcome.analysis,
            &outcome.assessment,
        );
        std::fs::write(json_path, doc)
            .map_err(|e| format!("writing {}: {e}", json_path.display()))?;
    }

    print!("{}", report::text(&outcome.analysis, &outcome.assessment));
    Ok(outcome.ok())
}
