//! The `freerider-lint` binary: walk the workspace, enforce the contract.
//!
//! ```text
//! freerider-lint --workspace [--root DIR] [--baseline FILE] [--json FILE]
//!                [--update-baseline] [--migrate-baseline]
//!                [--list-rules] [--selftest]
//! ```
//!
//! Exit status: 0 when no *new* (above-baseline) findings, 1 when there
//! are, 2 on usage or I/O errors.

use freerider_lint::{baseline, default_baseline_path, report, rules, run, walk};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    workspace: bool,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    json: Option<PathBuf>,
    update_baseline: bool,
    migrate_baseline: bool,
    list_rules: bool,
    selftest: bool,
}

const USAGE: &str = "\
usage: freerider-lint --workspace [options]
       freerider-lint --list-rules | --selftest

options:
  --workspace          analyze every .rs file of the enclosing workspace
  --root DIR           workspace root (default: walk up from the cwd)
  --baseline FILE      baseline file (default: <root>/lint.baseline)
  --json FILE          also write the machine-readable freerider-lint/2 report
  --update-baseline    rewrite the baseline to match current findings, exit 0
  --migrate-baseline   convert a v1 count-based baseline to v2 fingerprints
  --list-rules         print the rule catalogue and exit
  --selftest           prove every rule trips on its embedded positive fixture
";

fn parse_args(argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        root: None,
        baseline: None,
        json: None,
        update_baseline: false,
        migrate_baseline: false,
        list_rules: false,
        selftest: false,
    };
    let mut argv = argv.peekable();
    while let Some(a) = argv.next() {
        let mut path_arg = |name: &str| -> Result<PathBuf, String> {
            argv.next()
                .map(PathBuf::from)
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--root" => args.root = Some(path_arg("--root")?),
            "--baseline" => args.baseline = Some(path_arg("--baseline")?),
            "--json" => args.json = Some(path_arg("--json")?),
            "--update-baseline" => args.update_baseline = true,
            "--migrate-baseline" => args.migrate_baseline = true,
            "--list-rules" => args.list_rules = true,
            "--selftest" => args.selftest = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if !args.workspace && !args.list_rules && !args.selftest {
        return Err("nothing to do: pass --workspace, --list-rules, or --selftest".to_string());
    }
    if args.migrate_baseline && !args.workspace {
        return Err(
            "--migrate-baseline needs --workspace (findings anchor the entries)".to_string(),
        );
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("freerider-lint: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        print!("{}", report::rule_catalogue());
        return ExitCode::SUCCESS;
    }
    if args.selftest {
        return match run_selftest() {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("freerider-lint: selftest FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match run_workspace(&args) {
        Ok(ok) => {
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("freerider-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_workspace(args: &Args) -> Result<bool, String> {
    let root = match &args.root {
        Some(r) => r.clone(),
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
            walk::find_root(&cwd)
                .ok_or("no enclosing workspace (no Cargo.toml with [workspace]); use --root")?
        }
    };
    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| default_baseline_path(&root));

    if args.migrate_baseline {
        let v1 = baseline::load_v1(&baseline_path)
            .map_err(|e| format!("reading v1 {}: {e}", baseline_path.display()))?;
        let files =
            walk::discover(&root).map_err(|e| format!("walking {}: {e}", root.display()))?;
        let analysis = rules::analyze(&root, &files)
            .map_err(|e| format!("analyzing {}: {e}", root.display()))?;
        let accepted: Vec<rules::Finding> = baseline::migrate(&v1, &analysis.findings)
            .into_iter()
            .cloned()
            .collect();
        baseline::save(&baseline_path, &accepted)
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        println!(
            "freerider-lint: baseline migrated to v2 ({} of {} current finding(s) carried) at {}",
            accepted.len(),
            analysis.findings.len(),
            baseline_path.display()
        );
        return Ok(true);
    }

    let outcome =
        run(&root, &baseline_path).map_err(|e| format!("analyzing {}: {e}", root.display()))?;

    if args.update_baseline {
        baseline::save(&baseline_path, &outcome.analysis.findings)
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        println!(
            "freerider-lint: baseline updated ({} finding(s) accepted) at {}",
            outcome.analysis.findings.len(),
            baseline_path.display()
        );
        return Ok(true);
    }

    if let Some(json_path) = &args.json {
        let doc = report::json(
            &root.display().to_string(),
            &outcome.analysis,
            &outcome.assessment,
        );
        std::fs::write(json_path, doc)
            .map_err(|e| format!("writing {}: {e}", json_path.display()))?;
    }

    print!("{}", report::text(&outcome.analysis, &outcome.assessment));
    Ok(outcome.ok())
}

/// One embedded positive fixture per rule: the file contents are compiled
/// into the binary so `--selftest` works from any cwd with no checkout.
macro_rules! fixture_file {
    ($rel:literal) => {
        include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/", $rel))
    };
}

const SELFTEST: &[(&str, &[(&str, &str)])] = &[
    (
        "wallclock",
        &[(
            "crates/demo/src/lib.rs",
            fixture_file!("d1_bad/crates/demo/src/lib.rs"),
        )],
    ),
    (
        "hash-collections",
        &[(
            "crates/demo/src/lib.rs",
            fixture_file!("d2_bad/crates/demo/src/lib.rs"),
        )],
    ),
    (
        "env-registry",
        &[(
            "crates/demo/src/lib.rs",
            fixture_file!("d3_bad/crates/demo/src/lib.rs"),
        )],
    ),
    (
        "panic",
        &[(
            "crates/demo/src/lib.rs",
            fixture_file!("p1_bad/crates/demo/src/lib.rs"),
        )],
    ),
    (
        "unsafe-audit",
        &[(
            "crates/demo/src/lib.rs",
            fixture_file!("u1_bad_unsafe/crates/demo/src/lib.rs"),
        )],
    ),
    (
        "hot-path-alloc",
        &[(
            "crates/demo/src/lib.rs",
            fixture_file!("a1_alloc/crates/demo/src/lib.rs"),
        )],
    ),
    (
        "atomic-ordering",
        &[
            (
                "crates/demo/src/lib.rs",
                fixture_file!("o1_ordering/crates/demo/src/lib.rs"),
            ),
            (
                "crates/freerider-telemetry/src/counters.rs",
                fixture_file!("o1_ordering/crates/freerider-telemetry/src/counters.rs"),
            ),
        ],
    ),
    (
        "thread-containment",
        &[
            (
                "crates/demo/src/lib.rs",
                fixture_file!("t1_thread/crates/demo/src/lib.rs"),
            ),
            (
                "crates/freerider-rt/src/worker.rs",
                fixture_file!("t1_thread/crates/freerider-rt/src/worker.rs"),
            ),
        ],
    ),
    (
        "wire-exhaustive",
        &[(
            "crates/demo/src/lib.rs",
            fixture_file!("e1_frames/crates/demo/src/lib.rs"),
        )],
    ),
    (
        // The on-disk pragma_bad fixture deliberately trips P1 too (a
        // reason-less pragma must not waive its target); the embedded
        // variant isolates pragma hygiene itself.
        "pragma",
        &[(
            "crates/demo/src/lib.rs",
            "//! Embedded pragma-hygiene fixture.\n\
             #![forbid(unsafe_code)]\n\
             \n\
             // lint: allow(panic)\n\
             pub fn reasonless_above() {}\n\
             \n\
             // lint: allow(warp-drive) — no such rule\n\
             pub fn unknown_rule_above() {}\n",
        )],
    ),
];

/// Materializes each embedded fixture into a temp workspace, analyzes it,
/// and requires the fixture's own rule to trip (and sanctioned companion
/// files to stay silent).
fn run_selftest() -> Result<(), String> {
    let base = std::env::temp_dir().join(format!("freerider_lint_selftest_{}", std::process::id()));
    let mut result = Ok(());
    for (slug, files) in SELFTEST {
        let root = base.join(slug);
        let _ = std::fs::remove_dir_all(&root);
        for (rel, content) in *files {
            let path = root.join(rel);
            let dir = path.parent().ok_or("fixture path has no parent")?;
            std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
            std::fs::write(&path, content).map_err(|e| format!("write {}: {e}", path.display()))?;
        }
        let files = walk::discover(&root).map_err(|e| format!("walk {slug}: {e}"))?;
        let analysis = rules::analyze(&root, &files).map_err(|e| format!("analyze {slug}: {e}"))?;
        let hits = analysis
            .findings
            .iter()
            .filter(|f| f.rule.slug() == *slug)
            .count();
        let strays: Vec<String> = analysis
            .findings
            .iter()
            .filter(|f| f.rule.slug() != *slug)
            .map(|f| f.render())
            .collect();
        if hits == 0 {
            result = Err(format!(
                "rule `{slug}` did not trip on its positive fixture"
            ));
            println!("selftest: {slug:<18} FAIL (0 findings)");
        } else if !strays.is_empty() {
            result = Err(format!(
                "fixture for `{slug}` tripped other rules: {}",
                strays.join("; ")
            ));
            println!("selftest: {slug:<18} FAIL (stray findings)");
        } else {
            println!("selftest: {slug:<18} ok ({hits} finding(s))");
        }
    }
    let _ = std::fs::remove_dir_all(&base);
    result.map(|()| println!("freerider-lint: selftest passed ({} rules)", SELFTEST.len()))
}
