//! Count-based baselines: fail on *new* violations only.
//!
//! A baseline records, per `(rule, file)`, how many findings are accepted
//! debt. The analyzer fails only when a file's count for a rule *exceeds*
//! its baseline — so existing debt can be burned down incrementally while
//! the build blocks regressions. Counts (not line numbers) are recorded
//! because unrelated edits shift lines; a count only moves when a
//! violation is added or removed.
//!
//! Format: one `<rule-slug> <path> <count>` triple per line, `#` comments
//! and blank lines ignored, sorted on save so diffs stay reviewable.

use crate::rules::{Finding, Rule};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

/// Accepted-debt counts keyed by `(rule slug, workspace-relative path)`.
pub type Baseline = BTreeMap<(String, String), u32>;

/// Loads a baseline file; a missing file is an empty baseline.
pub fn load(path: &Path) -> io::Result<Baseline> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Baseline::new()),
        Err(e) => return Err(e),
    };
    let mut out = Baseline::new();
    for (no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let parsed = (|| {
            let slug = parts.next()?;
            Rule::from_slug(slug)?;
            let path = parts.next()?;
            let count: u32 = parts.next()?.parse().ok()?;
            Some((slug.to_string(), path.to_string(), count))
        })();
        match parsed {
            Some((slug, path, count)) if parts.next().is_none() => {
                out.insert((slug, path), count);
            }
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "baseline line {}: expected `<rule> <path> <count>`, got `{line}`",
                        no + 1
                    ),
                ));
            }
        }
    }
    Ok(out)
}

/// Writes the baseline that would make the given findings pass exactly.
pub fn save(path: &Path, findings: &[Finding]) -> io::Result<()> {
    let mut text = String::from(
        "# freerider-lint baseline — accepted findings per (rule, file).\n\
         # Regenerate with `freerider-lint --workspace --update-baseline`.\n",
    );
    for ((slug, file), count) in &counts(findings) {
        text.push_str(&format!("{slug} {file} {count}\n"));
    }
    fs::write(path, text)
}

/// The verdict of weighing findings against a baseline.
#[derive(Debug, Default)]
pub struct Assessment {
    /// Findings in groups that exceed their baseline (these fail the run).
    pub new: Vec<Finding>,
    /// Findings absorbed by the baseline.
    pub baselined: usize,
    /// Entries whose debt shrank: `(slug, path, allowed, found)` — time to
    /// tighten the baseline.
    pub stale: Vec<(String, String, u32, u32)>,
}

/// Weighs `findings` against `baseline`.
///
/// When a `(rule, file)` group exceeds its allowance, *all* of that
/// group's findings are reported — counts cannot tell old debt from the
/// regression, and showing the full group is what lets the author spot
/// the new one.
pub fn assess(findings: &[Finding], baseline: &Baseline) -> Assessment {
    let found = counts(findings);
    let mut out = Assessment::default();
    for (key, &n) in &found {
        let allowed = baseline.get(key).copied().unwrap_or(0);
        if n > allowed {
            out.new.extend(
                findings
                    .iter()
                    .filter(|f| f.rule.slug() == key.0 && f.path == key.1)
                    .cloned(),
            );
        } else {
            out.baselined += n as usize;
            if n < allowed {
                out.stale.push((key.0.clone(), key.1.clone(), allowed, n));
            }
        }
    }
    // Baseline entries for files with zero current findings are stale too.
    for (key, &allowed) in baseline {
        if !found.contains_key(key) {
            out.stale.push((key.0.clone(), key.1.clone(), allowed, 0));
        }
    }
    out.stale.sort();
    out
}

fn counts(findings: &[Finding]) -> BTreeMap<(String, String), u32> {
    let mut map = BTreeMap::new();
    for f in findings {
        *map.entry((f.rule.slug().to_string(), f.path.clone()))
            .or_insert(0u32) += 1;
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: Rule, path: &str, line: u32) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line,
            message: "m".to_string(),
        }
    }

    #[test]
    fn empty_baseline_reports_everything() {
        let f = vec![
            finding(Rule::Panic, "a.rs", 1),
            finding(Rule::Panic, "a.rs", 2),
        ];
        let a = assess(&f, &Baseline::new());
        assert_eq!(a.new.len(), 2);
        assert_eq!(a.baselined, 0);
    }

    #[test]
    fn at_or_under_baseline_passes_over_fails() {
        let f = vec![
            finding(Rule::Panic, "a.rs", 1),
            finding(Rule::Panic, "a.rs", 2),
            finding(Rule::Wallclock, "b.rs", 3),
        ];
        let mut b = Baseline::new();
        b.insert(("panic".into(), "a.rs".into()), 2);
        let a = assess(&f, &b);
        assert_eq!(a.new.len(), 1, "wallclock group has no allowance");
        assert_eq!(a.new[0].rule, Rule::Wallclock);
        assert_eq!(a.baselined, 2);

        b.insert(("panic".into(), "a.rs".into()), 1);
        let a = assess(&f, &b);
        assert_eq!(a.new.len(), 3, "whole exceeded group + wallclock reported");
    }

    #[test]
    fn shrunk_and_vanished_debt_is_stale() {
        let f = vec![finding(Rule::Panic, "a.rs", 1)];
        let mut b = Baseline::new();
        b.insert(("panic".into(), "a.rs".into()), 3);
        b.insert(("panic".into(), "gone.rs".into()), 2);
        let a = assess(&f, &b);
        assert!(a.new.is_empty());
        assert_eq!(
            a.stale,
            vec![
                ("panic".into(), "a.rs".into(), 3, 1),
                ("panic".into(), "gone.rs".into(), 2, 0),
            ]
        );
    }

    #[test]
    fn save_then_load_round_trips() {
        let f = vec![
            finding(Rule::Panic, "a.rs", 1),
            finding(Rule::Panic, "a.rs", 9),
            finding(Rule::HashCollections, "b.rs", 2),
        ];
        let dir = std::env::temp_dir().join("freerider_lint_baseline_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("lint.baseline");
        save(&path, &f).expect("save");
        let b = load(&path).expect("load");
        assert_eq!(b.len(), 2);
        assert_eq!(b[&("panic".to_string(), "a.rs".to_string())], 2);
        assert_eq!(assess(&f, &b).new.len(), 0);
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        let dir = std::env::temp_dir().join("freerider_lint_baseline_bad");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("lint.baseline");
        std::fs::write(&path, "panic a.rs not-a-number\n").expect("write");
        assert!(load(&path).is_err());
        std::fs::write(&path, "no-such-rule a.rs 1\n").expect("write");
        assert!(load(&path).is_err());
    }

    #[test]
    fn missing_baseline_is_empty() {
        let b = load(Path::new("/nonexistent/definitely/lint.baseline")).expect("ok");
        assert!(b.is_empty());
    }
}
