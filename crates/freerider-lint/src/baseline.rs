//! Fingerprint baselines: accepted debt named per finding, not per count.
//!
//! A baseline records one line per accepted finding, keyed by a stable
//! **fingerprint**: FNV-1a over `(rule slug, workspace-relative path,
//! normalized line text, occurrence index)`. Line *numbers* are deliberately
//! excluded — moving a finding up or down a file (the most common
//! churn under refactoring) produces no baseline diff, while editing the
//! offending line's text, renaming the file, or adding a second identical
//! violation all do. Compared to the old v1 count format, a diff now names
//! the exact finding that appeared or vanished instead of a bare number.
//!
//! Format (`version 2`):
//!
//! ```text
//! # comments and blank lines ignored
//! version 2
//! <rule-slug> <fingerprint-16-hex> <path> | <normalized line text>
//! ```
//!
//! The trailing `| <text>` is a human-readable note: load ignores it (the
//! fingerprint is authoritative), save regenerates it. Entries are sorted
//! by `(path, slug, fingerprint)` so diffs stay reviewable. Reading a v1
//! count-based file (`<rule> <path> <count>`) is a hard error directing
//! the user to `--migrate-baseline`.

use crate::rules::{Finding, Rule};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::Path;

/// Maximum length of the human-readable note saved after `|`.
const NOTE_MAX: usize = 72;

/// One accepted finding in a baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Rule slug (e.g. `panic`).
    pub slug: String,
    /// Stable fingerprint of the finding.
    pub fingerprint: u64,
    /// Workspace-relative path at the time the debt was accepted.
    pub path: String,
    /// Normalized-line excerpt (informational only; may be empty).
    pub note: String,
}

/// A parsed baseline: the set of accepted findings.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// All accepted entries (order as loaded; sorted on save).
    pub entries: Vec<Entry>,
}

impl Baseline {
    /// An empty baseline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of accepted entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no debt is accepted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The fingerprint set, for membership tests.
    pub fn fingerprints(&self) -> BTreeSet<u64> {
        self.entries.iter().map(|e| e.fingerprint).collect()
    }
}

/// Error text used when a v1 count-based baseline is detected.
pub const V1_HINT: &str =
    "old count-based (v1) baseline format; run `freerider-lint --workspace --migrate-baseline` \
     to convert it to fingerprint (v2) format";

/// Loads a v2 baseline file; a missing file is an empty baseline. A v1
/// count-based file is an error naming `--migrate-baseline`.
pub fn load(path: &Path) -> io::Result<Baseline> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Baseline::new()),
        Err(e) => return Err(e),
    };
    let mut lines = content_lines(&text);
    let mut out = Baseline::new();
    match lines.next() {
        None => return Ok(out), // comments/blank only
        Some((_, "version 2")) => {}
        Some((no, l)) => {
            let hint = if looks_like_v1(l) {
                V1_HINT
            } else {
                "expected `version 2` header"
            };
            return Err(bad(no, l, hint));
        }
    }
    for (no, line) in lines {
        let (head, note) = match line.split_once('|') {
            Some((h, n)) => (h.trim(), n.trim()),
            None => (line, ""),
        };
        let mut parts = head.split_whitespace();
        let parsed = (|| {
            let slug = parts.next()?;
            Rule::from_slug(slug)?;
            let hex = parts.next()?;
            let fingerprint = u64::from_str_radix(hex, 16).ok()?;
            let path = parts.next()?;
            Some((slug.to_string(), fingerprint, path.to_string()))
        })();
        match parsed {
            Some((slug, fingerprint, path)) if parts.next().is_none() => {
                out.entries.push(Entry {
                    slug,
                    fingerprint,
                    path,
                    note: note.to_string(),
                });
            }
            _ => {
                return Err(bad(
                    no,
                    line,
                    "expected `<rule> <fingerprint-hex> <path> | <text>`",
                ))
            }
        }
    }
    Ok(out)
}

/// Loads a **v1** count-based baseline (`<rule> <path> <count>` triples),
/// for `--migrate-baseline` only.
pub fn load_v1(path: &Path) -> io::Result<BTreeMap<(String, String), u32>> {
    let text = fs::read_to_string(path)?;
    let mut out = BTreeMap::new();
    for (no, line) in content_lines(&text) {
        let mut parts = line.split_whitespace();
        let parsed = (|| {
            let slug = parts.next()?;
            Rule::from_slug(slug)?;
            let path = parts.next()?;
            let count: u32 = parts.next()?.parse().ok()?;
            Some((slug.to_string(), path.to_string(), count))
        })();
        match parsed {
            Some((slug, path, count)) if parts.next().is_none() => {
                out.insert((slug, path), count);
            }
            _ => return Err(bad(no, line, "expected v1 `<rule> <path> <count>`")),
        }
    }
    Ok(out)
}

/// Writes the baseline that accepts exactly the given findings.
pub fn save(path: &Path, findings: &[Finding]) -> io::Result<()> {
    let mut text = String::from(
        "# freerider-lint baseline v2 — one accepted finding per line:\n\
         #   <rule> <fingerprint> <path> | <normalized line excerpt>\n\
         # Fingerprints hash (rule, path, line text) — not line numbers — so\n\
         # moving a finding does not dirty this file. Regenerate with\n\
         # `freerider-lint --workspace --update-baseline`.\n\
         version 2\n",
    );
    let mut rows: Vec<(&str, &str, u64, &str)> = findings
        .iter()
        .map(|f| {
            (
                f.path.as_str(),
                f.rule.slug(),
                f.fingerprint,
                f.norm.as_str(),
            )
        })
        .collect();
    rows.sort();
    rows.dedup();
    for (file, slug, fp, norm) in rows {
        let note: String = norm.chars().take(NOTE_MAX).collect();
        text.push_str(&format!("{slug} {fp:016x} {file} | {note}\n"));
    }
    fs::write(path, text)
}

/// The verdict of weighing findings against a baseline.
#[derive(Debug, Default)]
pub struct Assessment {
    /// Findings whose fingerprint the baseline does not accept (these
    /// fail the run).
    pub new: Vec<Finding>,
    /// Findings absorbed by the baseline.
    pub baselined: usize,
    /// Baseline entries that no longer match any finding — burned-down
    /// debt; time to tighten the baseline.
    pub stale: Vec<Entry>,
}

/// Weighs `findings` against `baseline` by fingerprint membership.
pub fn assess(findings: &[Finding], baseline: &Baseline) -> Assessment {
    let accepted = baseline.fingerprints();
    let mut out = Assessment::default();
    let mut live = BTreeSet::new();
    for f in findings {
        if accepted.contains(&f.fingerprint) {
            out.baselined += 1;
            live.insert(f.fingerprint);
        } else {
            out.new.push(f.clone());
        }
    }
    out.stale = baseline
        .entries
        .iter()
        .filter(|e| !live.contains(&e.fingerprint))
        .cloned()
        .collect();
    out.stale
        .sort_by(|a, b| (&a.path, &a.slug, a.fingerprint).cmp(&(&b.path, &b.slug, b.fingerprint)));
    out.stale.dedup();
    out
}

/// Selects the findings a v1 count baseline accepted: for each
/// `(rule, path)` group, the first `count` findings in report order.
/// Used by `--migrate-baseline` to carry accepted debt into v2.
pub fn migrate<'a>(
    v1: &BTreeMap<(String, String), u32>,
    findings: &'a [Finding],
) -> Vec<&'a Finding> {
    let mut remaining: BTreeMap<(String, String), u32> = v1.clone();
    let mut out = Vec::new();
    for f in findings {
        let key = (f.rule.slug().to_string(), f.path.clone());
        if let Some(n) = remaining.get_mut(&key) {
            if *n > 0 {
                *n -= 1;
                out.push(f);
            }
        }
    }
    out
}

fn content_lines(text: &str) -> impl Iterator<Item = (usize, &str)> {
    text.lines()
        .enumerate()
        .map(|(no, l)| (no + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
}

fn looks_like_v1(line: &str) -> bool {
    let parts: Vec<&str> = line.split_whitespace().collect();
    parts.len() == 3 && Rule::from_slug(parts[0]).is_some() && parts[2].parse::<u32>().is_ok()
}

fn bad(no: usize, line: &str, hint: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("baseline line {no}: {hint}, got `{line}`"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{assign_fingerprints, normalize_line};

    fn finding(rule: Rule, path: &str, line: u32, text: &str) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line,
            message: "m".to_string(),
            norm: normalize_line(text),
            fingerprint: 0,
        }
    }

    fn fingerprinted(mut findings: Vec<Finding>) -> Vec<Finding> {
        assign_fingerprints(&mut findings);
        findings
    }

    #[test]
    fn empty_baseline_reports_everything() {
        let f = fingerprinted(vec![
            finding(Rule::Panic, "a.rs", 1, "x.unwrap();"),
            finding(Rule::Panic, "a.rs", 2, "y.unwrap();"),
        ]);
        let a = assess(&f, &Baseline::new());
        assert_eq!(a.new.len(), 2);
        assert_eq!(a.baselined, 0);
        assert!(a.stale.is_empty());
    }

    #[test]
    fn matching_fingerprints_absorb_and_unmatched_fail() {
        let f = fingerprinted(vec![
            finding(Rule::Panic, "a.rs", 1, "x.unwrap();"),
            finding(Rule::Wallclock, "b.rs", 3, "Instant::now();"),
        ]);
        let base = Baseline {
            entries: vec![Entry {
                slug: "panic".into(),
                fingerprint: f[0].fingerprint,
                path: "a.rs".into(),
                note: String::new(),
            }],
        };
        let a = assess(&f, &base);
        assert_eq!(a.new.len(), 1, "wallclock has no entry");
        assert_eq!(a.new[0].rule, Rule::Wallclock);
        assert_eq!(a.baselined, 1);
        assert!(a.stale.is_empty());
    }

    #[test]
    fn burned_down_debt_is_stale() {
        let f = fingerprinted(vec![finding(Rule::Panic, "a.rs", 1, "x.unwrap();")]);
        let base = Baseline {
            entries: vec![
                Entry {
                    slug: "panic".into(),
                    fingerprint: f[0].fingerprint,
                    path: "a.rs".into(),
                    note: String::new(),
                },
                Entry {
                    slug: "panic".into(),
                    fingerprint: 0xdead_beef,
                    path: "gone.rs".into(),
                    note: "old.unwrap();".into(),
                },
            ],
        };
        let a = assess(&f, &base);
        assert!(a.new.is_empty());
        assert_eq!(a.stale.len(), 1);
        assert_eq!(a.stale[0].path, "gone.rs");
    }

    #[test]
    fn save_then_load_round_trips_and_absorbs() {
        let f = fingerprinted(vec![
            finding(Rule::Panic, "a.rs", 1, "x.unwrap();"),
            finding(Rule::Panic, "a.rs", 9, "x.unwrap();"),
            finding(
                Rule::HashCollections,
                "b.rs",
                2,
                "use std::collections::HashMap;",
            ),
        ]);
        let dir = std::env::temp_dir().join("freerider_lint_baseline_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("lint.baseline");
        save(&path, &f).expect("save");
        let b = load(&path).expect("load");
        assert_eq!(b.len(), 3, "identical lines keep distinct occurrences");
        let a = assess(&f, &b);
        assert!(a.new.is_empty());
        assert_eq!(a.baselined, 3);
        assert!(a.stale.is_empty());
    }

    #[test]
    fn line_moves_do_not_dirty_a_saved_baseline() {
        let before = fingerprinted(vec![
            finding(Rule::Panic, "a.rs", 5, "x.unwrap();"),
            finding(Rule::Wallclock, "a.rs", 9, "Instant::now();"),
        ]);
        // Same findings 40 lines lower (e.g. a new module added above).
        let after = fingerprinted(vec![
            finding(Rule::Panic, "a.rs", 45, "x.unwrap();"),
            finding(Rule::Wallclock, "a.rs", 49, "Instant::now();"),
        ]);
        let dir = std::env::temp_dir().join("freerider_lint_baseline_moves");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let p1 = dir.join("before.baseline");
        let p2 = dir.join("after.baseline");
        save(&p1, &before).expect("save");
        save(&p2, &after).expect("save");
        assert_eq!(
            std::fs::read_to_string(&p1).expect("read"),
            std::fs::read_to_string(&p2).expect("read"),
            "byte-identical baseline across the move"
        );
        let a = assess(&after, &load(&p1).expect("load"));
        assert!(a.new.is_empty() && a.stale.is_empty());
    }

    #[test]
    fn v1_baseline_is_rejected_with_migration_hint() {
        let dir = std::env::temp_dir().join("freerider_lint_baseline_v1");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("lint.baseline");
        std::fs::write(&path, "panic a.rs 3\n").expect("write");
        let err = load(&path).expect_err("v1 must not load");
        assert!(err.to_string().contains("--migrate-baseline"), "{err}");
        // …and load_v1 accepts exactly that file.
        let v1 = load_v1(&path).expect("v1 load");
        assert_eq!(v1[&("panic".to_string(), "a.rs".to_string())], 3);
    }

    #[test]
    fn malformed_v2_lines_are_errors() {
        let dir = std::env::temp_dir().join("freerider_lint_baseline_bad");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("lint.baseline");
        for body in [
            "version 2\npanic not-hex a.rs | x\n",
            "version 2\nno-such-rule 00000000deadbeef a.rs | x\n",
            "version 3\n",
        ] {
            std::fs::write(&path, body).expect("write");
            assert!(load(&path).is_err(), "{body:?} must fail");
        }
    }

    #[test]
    fn missing_or_comment_only_baseline_is_empty() {
        let b = load(Path::new("/nonexistent/definitely/lint.baseline")).expect("ok");
        assert!(b.is_empty());
        let dir = std::env::temp_dir().join("freerider_lint_baseline_empty");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("lint.baseline");
        std::fs::write(&path, "# nothing accepted\n\n").expect("write");
        assert!(load(&path).expect("ok").is_empty());
    }

    #[test]
    fn migrate_selects_first_n_per_group() {
        let f = fingerprinted(vec![
            finding(Rule::Panic, "a.rs", 1, "x.unwrap();"),
            finding(Rule::Panic, "a.rs", 5, "y.unwrap();"),
            finding(Rule::Panic, "a.rs", 9, "z.unwrap();"),
            finding(Rule::Wallclock, "b.rs", 2, "Instant::now();"),
        ]);
        let mut v1 = BTreeMap::new();
        v1.insert(("panic".to_string(), "a.rs".to_string()), 2);
        let picked = migrate(&v1, &f);
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0].line, 1);
        assert_eq!(picked[1].line, 5);
    }
}
