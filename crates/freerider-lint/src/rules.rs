//! The rule engine: repo-specific invariants over the token stream.
//!
//! | id | slug | invariant |
//! |----|------|-----------|
//! | D1 | `wallclock` | no `Instant` / `SystemTime` outside the telemetry timer modules and the bench harness |
//! | D2 | `hash-collections` | no `HashMap` / `HashSet` in non-test code (iteration order is nondeterministic) |
//! | D3 | `env-registry` | every `FREERIDER_*` name in a string literal must be listed in `freerider-core/src/env.rs` |
//! | P1 | `panic` | no `.unwrap()` / `.expect(…)` / `panic!` in library non-test code |
//! | U1 | `unsafe-audit` | every `unsafe` is preceded by a `// SAFETY:` comment; unsafe-free crates carry `#![forbid(unsafe_code)]` |
//! | —  | `pragma` | `// lint:` comments must parse (unknown rule / missing reason is itself a finding) |
//!
//! Findings can be waived per line with
//! `// lint: allow(<slug>) — <reason>` (trailing on the offending line, or
//! alone on the line above it); the reason is mandatory. Test code —
//! `#[cfg(test)]` / `#[test]` items and `tests/` files — is exempt from
//! D1, D2 and P1 but not from D3 or U1.

use crate::lexer::{lex, Tok, Token};
use crate::walk::{FileKind, SourceFile};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::Path;

/// The rules, in report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// D1 — wall-clock reads break run-to-run determinism.
    Wallclock,
    /// D2 — hashed collections iterate in nondeterministic order.
    HashCollections,
    /// D3 — undocumented `FREERIDER_*` knobs drift silently.
    EnvRegistry,
    /// P1 — library code must return errors, not abort the process.
    Panic,
    /// U1 — unsafe requires a written safety argument (or a crate ban).
    UnsafeAudit,
    /// Malformed `// lint:` pragma.
    Pragma,
}

/// All rules, in the order reports list them.
pub const ALL_RULES: [Rule; 6] = [
    Rule::Wallclock,
    Rule::HashCollections,
    Rule::EnvRegistry,
    Rule::Panic,
    Rule::UnsafeAudit,
    Rule::Pragma,
];

impl Rule {
    /// The slug used in findings, pragmas, and baselines.
    pub fn slug(self) -> &'static str {
        match self {
            Rule::Wallclock => "wallclock",
            Rule::HashCollections => "hash-collections",
            Rule::EnvRegistry => "env-registry",
            Rule::Panic => "panic",
            Rule::UnsafeAudit => "unsafe-audit",
            Rule::Pragma => "pragma",
        }
    }

    /// The short catalogue id (`D1`…`U1`; the pragma check has none).
    pub fn id(self) -> &'static str {
        match self {
            Rule::Wallclock => "D1",
            Rule::HashCollections => "D2",
            Rule::EnvRegistry => "D3",
            Rule::Panic => "P1",
            Rule::UnsafeAudit => "U1",
            Rule::Pragma => "-",
        }
    }

    /// One-line description for `--list-rules` and the JSON report.
    pub fn description(self) -> &'static str {
        match self {
            Rule::Wallclock => {
                "no Instant/SystemTime outside freerider-telemetry timers and the bench harness"
            }
            Rule::HashCollections => {
                "no HashMap/HashSet in non-test code (use BTreeMap/BTreeSet or sort before emit)"
            }
            Rule::EnvRegistry => {
                "every FREERIDER_* env var must be listed in freerider-core/src/env.rs"
            }
            Rule::Panic => "no unwrap()/expect()/panic! in library non-test code",
            Rule::UnsafeAudit => {
                "unsafe requires a preceding // SAFETY: comment; unsafe-free crates \
                 must carry #![forbid(unsafe_code)]"
            }
            Rule::Pragma => "// lint: pragmas must name a known rule and give a reason",
        }
    }

    /// Parses a slug back to a rule (pragmas may name any except `pragma`).
    pub fn from_slug(s: &str) -> Option<Rule> {
        ALL_RULES
            .into_iter()
            .find(|r| r.slug() == s && *r != Rule::Pragma)
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// The canonical `file:line: rule: message` rendering.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {}: {}",
            self.path,
            self.line,
            self.rule.slug(),
            self.message
        )
    }
}

/// The result of analyzing a workspace.
#[derive(Debug, Default)]
pub struct Analysis {
    /// All findings, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// The registered `FREERIDER_*` names found in the env registry.
    pub registry: BTreeSet<String>,
}

/// Path (workspace-relative) of the central env-var registry D3 reads.
pub const REGISTRY_PATH: &str = "crates/freerider-core/src/env.rs";

/// Files D1 exempts: the telemetry timer/trace/profile modules are the
/// *only* library code allowed to read the clock (their output is
/// reported separately from the deterministic sections).
const WALLCLOCK_EXEMPT_FILES: [&str; 3] = [
    "crates/freerider-telemetry/src/profile.rs",
    "crates/freerider-telemetry/src/timer.rs",
    "crates/freerider-telemetry/src/trace.rs",
];

/// Crates exempt from D1 and P1 wholesale: the bench harness exists to
/// measure wall-clock time, and the lint's own fixtures never ship.
const BENCH_CRATE: &str = "freerider-bench";

/// Runs every rule over the given files (as discovered by
/// [`crate::walk::discover`]). `root` is the workspace root.
pub fn analyze(root: &Path, files: &[SourceFile]) -> io::Result<Analysis> {
    let registry = load_registry(root);
    let mut findings = Vec::new();
    // Per-crate U1 state: does the lib target contain `unsafe`, and does
    // its crate root carry `#![forbid(unsafe_code)]`?
    let mut lib_unsafe: BTreeMap<String, bool> = BTreeMap::new();
    let mut lib_forbid: BTreeMap<String, (String, bool)> = BTreeMap::new();

    for file in files {
        let src = fs::read_to_string(&file.abs)?;
        let ctx = FileCtx::new(file, &src, &registry);
        ctx.check(&mut findings);
        if file.kind == FileKind::Lib {
            let has_unsafe = ctx.has_unsafe();
            *lib_unsafe.entry(file.crate_name.clone()).or_insert(false) |= has_unsafe;
            if file.is_lib_root {
                lib_forbid.insert(
                    file.crate_name.clone(),
                    (file.rel.clone(), ctx.has_forbid_unsafe()),
                );
            }
        }
    }

    // U1, crate half: a crate with no unsafe in its library target must
    // ban it outright, so the audit burden can never grow silently.
    for (crate_name, (lib_rel, has_forbid)) in &lib_forbid {
        let has_unsafe = lib_unsafe.get(crate_name).copied().unwrap_or(false);
        if !has_unsafe && !has_forbid {
            findings.push(Finding {
                rule: Rule::UnsafeAudit,
                path: lib_rel.clone(),
                line: 1,
                message: format!(
                    "crate `{crate_name}` has no unsafe code but its crate root \
                     lacks #![forbid(unsafe_code)]"
                ),
            });
        }
    }

    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(Analysis {
        findings,
        files_scanned: files.len(),
        registry,
    })
}

/// Loads the registered env-var names: every `FREERIDER_*` string literal
/// in [`REGISTRY_PATH`]. A missing registry file means an empty registry
/// (so every knob is flagged until one is created).
fn load_registry(root: &Path) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    if let Ok(src) = fs::read_to_string(root.join(REGISTRY_PATH)) {
        for tok in lex(&src) {
            if let Tok::Str(s) = &tok.kind {
                for name in freerider_names(s) {
                    names.insert(name);
                }
            }
        }
    }
    names
}

/// Extracts every maximal `FREERIDER_[A-Z0-9_]+` run from a string.
fn freerider_names(s: &str) -> Vec<String> {
    const PREFIX: &str = "FREERIDER_";
    let bytes = s.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(off) = s[i..].find(PREFIX) {
        let start = i + off;
        let mut end = start + PREFIX.len();
        while end < bytes.len()
            && (bytes[end].is_ascii_uppercase()
                || bytes[end].is_ascii_digit()
                || bytes[end] == b'_')
        {
            end += 1;
        }
        if end > start + PREFIX.len() {
            out.push(s[start..end].to_string());
        }
        i = end;
    }
    out
}

/// Everything the per-file checks need, computed once per file.
struct FileCtx<'a> {
    file: &'a SourceFile,
    registry: &'a BTreeSet<String>,
    tokens: Vec<Token>,
    /// True for tokens inside `#[cfg(test)]` / `#[test]` items.
    in_test: Vec<bool>,
    /// Per rule: lines waived by a parsed `// lint: allow(…)` pragma.
    allowed: BTreeMap<Rule, BTreeSet<u32>>,
    /// Malformed-pragma findings discovered while parsing comments.
    pragma_errors: Vec<(u32, String)>,
    /// End lines of `SAFETY:` comments (for U1 adjacency).
    safety_lines: BTreeSet<u32>,
}

impl<'a> FileCtx<'a> {
    fn new(file: &'a SourceFile, src: &str, registry: &'a BTreeSet<String>) -> Self {
        let tokens = lex(src);
        let in_test = test_mask(&tokens);
        let mut ctx = FileCtx {
            file,
            registry,
            in_test,
            allowed: BTreeMap::new(),
            pragma_errors: Vec::new(),
            safety_lines: BTreeSet::new(),
            tokens,
        };
        ctx.scan_comments();
        ctx
    }

    /// Parses pragmas and SAFETY markers out of the comment tokens.
    fn scan_comments(&mut self) {
        for i in 0..self.tokens.len() {
            let (text, line, end_line) = match &self.tokens[i].kind {
                Tok::LineComment(t) => (t.clone(), self.tokens[i].line, self.tokens[i].end_line),
                Tok::BlockComment(t) => (t.clone(), self.tokens[i].line, self.tokens[i].end_line),
                _ => continue,
            };
            let trimmed = text.trim_start_matches(['/', '!', '*', ' ', '\t']);
            if trimmed.starts_with("SAFETY:") {
                self.safety_lines.insert(end_line);
            }
            match parse_pragma(&text) {
                Ok(None) => {}
                Ok(Some((rule, _reason))) => {
                    let target = self.pragma_target(i, line);
                    self.allowed.entry(rule).or_default().insert(target);
                }
                Err(msg) => self.pragma_errors.push((line, msg)),
            }
        }
    }

    /// The line a pragma waives: its own line when it trails code, else
    /// the line of the next code token below it.
    fn pragma_target(&self, comment_idx: usize, comment_line: u32) -> u32 {
        let trails_code = self.tokens[..comment_idx]
            .iter()
            .rev()
            .take_while(|t| t.end_line >= comment_line)
            .any(|t| !is_comment(t) && t.end_line == comment_line);
        if trails_code {
            return comment_line;
        }
        self.tokens[comment_idx + 1..]
            .iter()
            .find(|t| !is_comment(t))
            .map(|t| t.line)
            .unwrap_or(comment_line)
    }

    fn is_allowed(&self, rule: Rule, line: u32) -> bool {
        self.allowed.get(&rule).is_some_and(|s| s.contains(&line))
    }

    /// True when the file as a whole is test code.
    fn is_test_file(&self) -> bool {
        self.file.kind == FileKind::Test
    }

    fn has_unsafe(&self) -> bool {
        self.tokens
            .iter()
            .any(|t| matches!(&t.kind, Tok::Ident(s) if s == "unsafe"))
    }

    /// Detects `#![forbid(unsafe_code)]` (possibly with more lints listed).
    fn has_forbid_unsafe(&self) -> bool {
        let code: Vec<&Token> = self.tokens.iter().filter(|t| !is_comment(t)).collect();
        for w in 0..code.len().saturating_sub(4) {
            if matches!(code[w].kind, Tok::Punct('#'))
                && matches!(code[w + 1].kind, Tok::Punct('!'))
                && matches!(code[w + 2].kind, Tok::Punct('['))
                && matches!(&code[w + 3].kind, Tok::Ident(s) if s == "forbid")
            {
                for t in &code[w + 4..] {
                    match &t.kind {
                        Tok::Punct(']') => break,
                        Tok::Ident(s) if s == "unsafe_code" => return true,
                        _ => {}
                    }
                }
            }
        }
        false
    }

    /// Runs all per-file rules, appending to `out`.
    fn check(&self, out: &mut Vec<Finding>) {
        for (line, msg) in &self.pragma_errors {
            self.emit(out, Rule::Pragma, *line, msg.clone());
        }

        let code: Vec<(usize, &Token)> = self
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !is_comment(t))
            .collect();

        for (pos, &(idx, tok)) in code.iter().enumerate() {
            let test_code = self.is_test_file() || self.in_test[idx];
            match &tok.kind {
                Tok::Ident(name) => {
                    self.check_ident(out, &code, pos, name, tok.line, test_code);
                }
                Tok::Str(s) => self.check_string(out, s, tok.line),
                _ => {}
            }
        }
    }

    fn check_ident(
        &self,
        out: &mut Vec<Finding>,
        code: &[(usize, &Token)],
        pos: usize,
        name: &str,
        line: u32,
        test_code: bool,
    ) {
        let next_is = |c: char| {
            code.get(pos + 1)
                .is_some_and(|(_, t)| matches!(t.kind, Tok::Punct(p) if p == c))
        };
        let prev_is_dot = pos > 0 && matches!(code[pos - 1].1.kind, Tok::Punct('.'));

        match name {
            // D1 — wall-clock.
            "Instant" | "SystemTime" if !test_code && self.wallclock_applies() => {
                self.emit_unless_allowed(
                    out,
                    Rule::Wallclock,
                    line,
                    format!(
                        "`{name}` is wall-clock time; deterministic code must not read the \
                     clock (telemetry timers and the bench harness are the exemptions)"
                    ),
                );
            }
            // D2 — hashed collections.
            "HashMap" | "HashSet" if !test_code => {
                self.emit_unless_allowed(
                    out,
                    Rule::HashCollections,
                    line,
                    format!(
                        "`{name}` iterates in nondeterministic order; use BTreeMap/BTreeSet, \
                     or sort before emitting and annotate \
                     `// lint: allow(hash-collections) — <why sorted>`"
                    ),
                );
            }
            // P1 — panic policy.
            "unwrap" | "expect"
                if !test_code && self.panic_applies() && prev_is_dot && next_is('(') =>
            {
                self.emit_unless_allowed(
                    out,
                    Rule::Panic,
                    line,
                    format!(
                        ".{name}() can abort the process; return a typed error, or annotate \
                     `// lint: allow(panic) — <why this cannot fail>`"
                    ),
                );
            }
            "panic" if !test_code && self.panic_applies() && next_is('!') => {
                self.emit_unless_allowed(
                    out,
                    Rule::Panic,
                    line,
                    "panic! aborts the process; return a typed error, or annotate \
                     `// lint: allow(panic) — <why this is unreachable>`"
                        .to_string(),
                );
            }
            // U1 — per-site half: every `unsafe` needs an adjacent SAFETY
            // comment (applies to test code too — audits don't stop at
            // #[cfg(test)]).
            "unsafe" => {
                let documented = self.safety_lines.contains(&line)
                    || self.safety_lines.contains(&line.saturating_sub(1));
                if !documented {
                    self.emit(
                        out,
                        Rule::UnsafeAudit,
                        line,
                        "`unsafe` without an immediately preceding // SAFETY: comment \
                         stating why the invariants hold"
                            .to_string(),
                    );
                }
            }
            _ => {}
        }
    }

    /// D3 — every `FREERIDER_*` name mentioned in a string literal must be
    /// registered. Applies everywhere (tests reading an unregistered knob
    /// are still drift); the registry file itself is exempt.
    fn check_string(&self, out: &mut Vec<Finding>, s: &str, line: u32) {
        if self.file.rel == REGISTRY_PATH {
            return;
        }
        for name in freerider_names(s) {
            if !self.registry.contains(&name) {
                self.emit_unless_allowed(
                    out,
                    Rule::EnvRegistry,
                    line,
                    format!(
                        "`{name}` is not listed in the env-var registry \
                     ({REGISTRY_PATH}); register it so knobs stay documented"
                    ),
                );
            }
        }
    }

    fn wallclock_applies(&self) -> bool {
        self.file.crate_name != BENCH_CRATE
            && !WALLCLOCK_EXEMPT_FILES.contains(&self.file.rel.as_str())
    }

    fn panic_applies(&self) -> bool {
        self.file.kind == FileKind::Lib && self.file.crate_name != BENCH_CRATE
    }

    fn emit_unless_allowed(&self, out: &mut Vec<Finding>, rule: Rule, line: u32, msg: String) {
        if !self.is_allowed(rule, line) {
            self.emit(out, rule, line, msg);
        }
    }

    fn emit(&self, out: &mut Vec<Finding>, rule: Rule, line: u32, message: String) {
        out.push(Finding {
            rule,
            path: self.file.rel.clone(),
            line,
            message,
        });
    }
}

fn is_comment(t: &Token) -> bool {
    matches!(t.kind, Tok::LineComment(_) | Tok::BlockComment(_))
}

/// Parses one comment as a pragma.
///
/// Grammar: `lint: allow(<slug>) <sep> <reason>` where `<sep>` is `—`, `-`
/// or `:` (optional) and `<reason>` is non-empty. Returns `Ok(None)` for
/// comments that are not pragmas at all, and `Err` for comments that start
/// with `lint:` but do not parse — a typo'd pragma silently allowing
/// nothing would be worse than a finding.
pub fn parse_pragma(text: &str) -> Result<Option<(Rule, String)>, String> {
    let t = text.trim();
    let Some(rest) = t.strip_prefix("lint:") else {
        return Ok(None);
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Err(format!(
            "malformed pragma `{t}`: expected `lint: allow(<rule>) — <reason>`"
        ));
    };
    let Some(close) = rest.find(')') else {
        return Err(format!("malformed pragma `{t}`: unclosed `allow(`"));
    };
    let slug = rest[..close].trim();
    let Some(rule) = Rule::from_slug(slug) else {
        return Err(format!(
            "pragma names unknown rule `{slug}` (known: wallclock, hash-collections, \
             env-registry, panic, unsafe-audit)"
        ));
    };
    let reason: String = rest[close + 1..]
        .trim_start_matches([' ', '\t', '—', '-', ':', '–'])
        .trim()
        .to_string();
    if reason.is_empty() {
        return Err(format!(
            "pragma `allow({slug})` has no reason; write \
             `// lint: allow({slug}) — <why this is sound>`"
        ));
    }
    Ok(Some((rule, reason)))
}

/// Marks tokens belonging to `#[cfg(test)]` / `#[test]` items (the
/// attribute, any stacked attributes after it, and the item body through
/// its closing `}` or `;`).
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !is_comment(&tokens[i]))
        .collect();
    let kind = |ci: usize| -> &Tok { &tokens[code[ci]].kind };

    let mut ci = 0;
    while ci < code.len() {
        if matches!(kind(ci), Tok::Punct('#'))
            && ci + 1 < code.len()
            && matches!(kind(ci + 1), Tok::Punct('['))
        {
            if let Some(close) = matching(&code, tokens, ci + 1, '[', ']') {
                if attr_is_test(tokens, &code[ci + 2..close]) {
                    // Consume stacked attributes after the matching one.
                    let mut end = close;
                    while end + 2 < code.len()
                        && matches!(kind(end + 1), Tok::Punct('#'))
                        && matches!(kind(end + 2), Tok::Punct('['))
                    {
                        match matching(&code, tokens, end + 2, '[', ']') {
                            Some(c) => end = c,
                            None => break,
                        }
                    }
                    let item_end = item_end(&code, tokens, end + 1);
                    for &ti in &code[ci..=item_end.min(code.len() - 1)] {
                        mask[ti] = true;
                    }
                    ci = item_end + 1;
                    continue;
                }
                ci = close + 1;
                continue;
            }
        }
        ci += 1;
    }
    mask
}

/// Finds the code-index of the delimiter matching `code[open_ci]`.
fn matching(
    code: &[usize],
    tokens: &[Token],
    open_ci: usize,
    open: char,
    close: char,
) -> Option<usize> {
    let mut depth = 0usize;
    for (ci, &ti) in code.iter().enumerate().skip(open_ci) {
        match tokens[ti].kind {
            Tok::Punct(p) if p == open => depth += 1,
            Tok::Punct(p) if p == close => {
                depth -= 1;
                if depth == 0 {
                    return Some(ci);
                }
            }
            _ => {}
        }
    }
    None
}

/// True when the attribute token span means "test code": `#[test]`, or a
/// `cfg`/`cfg_attr` whose predicate mentions `test` outside any `not(…)`.
fn attr_is_test(tokens: &[Token], inner: &[usize]) -> bool {
    let idents: Vec<&str> = inner
        .iter()
        .filter_map(|&ti| match &tokens[ti].kind {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    if idents.as_slice() == ["test"] {
        return true;
    }
    if idents.first() != Some(&"cfg") {
        return false;
    }
    // Walk the predicate tracking which head ident owns each paren group,
    // so `cfg(not(test))` is recognised as NOT test code.
    let mut heads: Vec<String> = Vec::new();
    let mut last_ident: Option<String> = None;
    for &ti in inner {
        match &tokens[ti].kind {
            Tok::Ident(s) => {
                if s == "test" && !heads.iter().any(|h| h == "not") {
                    return true;
                }
                last_ident = Some(s.clone());
            }
            Tok::Punct('(') => heads.push(last_ident.take().unwrap_or_default()),
            Tok::Punct(')') => {
                heads.pop();
            }
            _ => last_ident = None,
        }
    }
    false
}

/// Code-index of the last token of the item starting at `start_ci`: the
/// first `;` at depth 0, or the `}` matching the first `{`.
fn item_end(code: &[usize], tokens: &[Token], start_ci: usize) -> usize {
    let mut depth = 0usize;
    for (ci, &ti) in code.iter().enumerate().skip(start_ci) {
        match tokens[ti].kind {
            Tok::Punct(';') if depth == 0 => return ci,
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return ci;
                }
            }
            _ => {}
        }
    }
    code.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::SourceFile;
    use std::path::PathBuf;

    fn lib_file(rel: &str, crate_name: &str) -> SourceFile {
        SourceFile {
            rel: rel.to_string(),
            abs: PathBuf::new(),
            crate_name: crate_name.to_string(),
            kind: FileKind::Lib,
            is_lib_root: rel.ends_with("lib.rs"),
        }
    }

    fn run(src: &str) -> Vec<Finding> {
        let file = lib_file("crates/x/src/m.rs", "x");
        let registry = BTreeSet::from(["FREERIDER_THREADS".to_string()]);
        let ctx = FileCtx::new(&file, src, &registry);
        let mut out = Vec::new();
        ctx.check(&mut out);
        out
    }

    fn slugs(src: &str) -> Vec<&'static str> {
        run(src).into_iter().map(|f| f.rule.slug()).collect()
    }

    #[test]
    fn wallclock_flags_instant_and_systemtime() {
        assert_eq!(
            slugs("use std::time::Instant;\nlet t = SystemTime::now();"),
            vec!["wallclock", "wallclock"]
        );
    }

    #[test]
    fn wallclock_in_comment_or_string_is_fine() {
        assert!(slugs("// Instant::now()\nlet s = \"SystemTime\";").is_empty());
    }

    #[test]
    fn hash_collections_flagged_with_pragma_escape() {
        assert_eq!(
            slugs("use std::collections::HashMap;"),
            vec!["hash-collections"]
        );
        assert!(slugs(
            "// lint: allow(hash-collections) — keys sorted before emit\n\
             use std::collections::HashMap;"
        )
        .is_empty());
    }

    #[test]
    fn env_registry_checks_literals() {
        assert!(slugs(r#"let v = std::env::var("FREERIDER_THREADS");"#).is_empty());
        assert_eq!(
            slugs(r#"let v = std::env::var("FREERIDER_BOGUS");"#), // lint: allow(env-registry) — negative fixture for this very rule
            vec!["env-registry"]
        );
        // Substring inside a usage string counts too.
        assert_eq!(
            slugs(r#"let u = "set FREERIDER_NOPE=1 to break things";"#), // lint: allow(env-registry) — negative fixture for this very rule
            vec!["env-registry"]
        );
    }

    #[test]
    fn panic_policy_on_method_calls_only() {
        assert_eq!(
            slugs("fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"no\"); }"),
            vec!["panic", "panic", "panic"]
        );
        // unwrap_or / expect-like idents and field accesses don't match.
        assert!(slugs("fn f() { x.unwrap_or(0); let unwrap = 3; s.expected(); }").is_empty());
    }

    #[test]
    fn panic_pragma_trailing_and_preceding() {
        assert!(slugs("x.unwrap(); // lint: allow(panic) — len checked above").is_empty());
        assert!(slugs("// lint: allow(panic) — infallible on String\nx.unwrap();").is_empty());
        // A trailing pragma does not leak onto the next line.
        assert_eq!(
            slugs("x.unwrap(); // lint: allow(panic) — checked\ny.unwrap();"),
            vec!["panic"]
        );
    }

    #[test]
    fn cfg_test_items_are_exempt_from_panic_and_hash_rules() {
        let src = "\
fn prod() { real(); }
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() { x.unwrap(); let i = Instant::now(); }
}
";
        // D1/D2/P1 all quiet; nothing else fires.
        assert!(slugs(src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        assert_eq!(
            slugs("#[cfg(not(test))]\nfn f() { x.unwrap(); }"),
            vec!["panic"]
        );
    }

    #[test]
    fn test_attr_fn_is_exempt_but_following_code_is_not() {
        let src = "\
#[test]
fn t() { x.unwrap(); }
fn prod() { y.unwrap(); }
";
        let found = run(src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn unsafe_requires_adjacent_safety_comment() {
        assert_eq!(
            slugs("fn f() { unsafe { danger() } }"),
            vec!["unsafe-audit"]
        );
        assert!(slugs(
            "// SAFETY: index bounded by the loop condition above\n\
             fn f() { unsafe { danger() } }"
        )
        .is_empty());
        // A SAFETY comment two lines up is not "immediately preceding".
        assert_eq!(
            slugs("// SAFETY: stale\n\nlet _pad = 0;\nfn f() { unsafe { danger() } }"),
            vec!["unsafe-audit"]
        );
    }

    #[test]
    fn malformed_pragmas_are_findings() {
        assert_eq!(
            slugs("// lint: allow(panics) — typo'd rule\nf();"),
            vec!["pragma"]
        );
        assert_eq!(
            slugs("// lint: allow(panic)\nx.unwrap();"),
            vec!["pragma", "panic"]
        );
        assert_eq!(
            slugs("// lint: disallow(panic) — nope\nf();"),
            vec!["pragma"]
        );
    }

    #[test]
    fn pragma_parser_accepts_separator_variants() {
        for sep in ["—", "-", ":", ""] {
            let text = format!(" lint: allow(panic) {sep} reason here");
            let (rule, reason) = parse_pragma(&text).expect("parses").expect("is a pragma");
            assert_eq!(rule, Rule::Panic);
            assert_eq!(reason, "reason here");
        }
        assert_eq!(parse_pragma(" ordinary comment"), Ok(None));
    }
}
