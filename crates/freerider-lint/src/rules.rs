//! The rule engine: repo-specific invariants over the token stream and
//! the [`crate::items`] item tree.
//!
//! | id | slug | invariant |
//! |----|------|-----------|
//! | D1 | `wallclock` | no `Instant` / `SystemTime` outside the telemetry timer modules and the bench harness |
//! | D2 | `hash-collections` | no `HashMap` / `HashSet` in non-test code (iteration order is nondeterministic) |
//! | D3 | `env-registry` | every `FREERIDER_*` name in a string literal must be listed in `freerider-core/src/env.rs` |
//! | P1 | `panic` | no `.unwrap()` / `.expect(…)` / `panic!` in library non-test code |
//! | U1 | `unsafe-audit` | every `unsafe` is preceded by a `// SAFETY:` comment; unsafe-free crates carry `#![forbid(unsafe_code)]` |
//! | A1 | `hot-path-alloc` | no heap allocation (`Vec::new`, `vec!`, `Box::new`, `.collect()`, …) inside designated hot-path functions |
//! | O1 | `atomic-ordering` | `Relaxed` only in sanctioned telemetry/metrics counter sites; `SeqCst` always needs a justification pragma |
//! | T1 | `thread-containment` | `std::thread::spawn` / `scope` / `Builder` only inside `freerider-rt` and `freerider-serve` |
//! | E1 | `wire-exhaustive` | every `FrameType` variant has a decode arm in `from_byte` and an encode site somewhere in non-test code |
//! | —  | `pragma` | `// lint:` comments must parse (unknown rule / missing reason is itself a finding) |
//!
//! Findings can be waived per line with
//! `// lint: allow(<slug>) — <reason>` (trailing on the offending line, or
//! alone on the line above it); the reason is mandatory. Rules with a
//! catalogue id also accept the lowercase id (`allow(a1)`). Test code —
//! `#[cfg(test)]` / `#[test]` items and `tests/` files — is exempt from
//! D1, D2, P1, A1, O1 and T1 but not from D3 or U1.
//!
//! A1 designations come from two places: the built-in [`HOT_PATHS`] table
//! (the workspace's RX/DSP/coding kernels), and an in-source
//! `// lint: hot-path` marker comment placed directly above a function.

use crate::items::ItemTree;
use crate::lexer::{lex, Tok, Token};
use crate::walk::{FileKind, SourceFile};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::Path;

/// The rules, in report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// D1 — wall-clock reads break run-to-run determinism.
    Wallclock,
    /// D2 — hashed collections iterate in nondeterministic order.
    HashCollections,
    /// D3 — undocumented `FREERIDER_*` knobs drift silently.
    EnvRegistry,
    /// P1 — library code must return errors, not abort the process.
    Panic,
    /// U1 — unsafe requires a written safety argument (or a crate ban).
    UnsafeAudit,
    /// A1 — designated hot-path functions must not allocate.
    HotPathAlloc,
    /// O1 — atomic orderings are audited: Relaxed is for counters only.
    AtomicOrdering,
    /// T1 — threads may only be spawned in the runtime and server crates.
    ThreadContainment,
    /// E1 — wire-protocol frame types must round-trip encode/decode.
    WireExhaustive,
    /// Malformed `// lint:` pragma.
    Pragma,
}

/// All rules, in the order reports list them.
pub const ALL_RULES: [Rule; 10] = [
    Rule::Wallclock,
    Rule::HashCollections,
    Rule::EnvRegistry,
    Rule::Panic,
    Rule::UnsafeAudit,
    Rule::HotPathAlloc,
    Rule::AtomicOrdering,
    Rule::ThreadContainment,
    Rule::WireExhaustive,
    Rule::Pragma,
];

impl Rule {
    /// The slug used in findings, pragmas, and baselines.
    pub fn slug(self) -> &'static str {
        match self {
            Rule::Wallclock => "wallclock",
            Rule::HashCollections => "hash-collections",
            Rule::EnvRegistry => "env-registry",
            Rule::Panic => "panic",
            Rule::UnsafeAudit => "unsafe-audit",
            Rule::HotPathAlloc => "hot-path-alloc",
            Rule::AtomicOrdering => "atomic-ordering",
            Rule::ThreadContainment => "thread-containment",
            Rule::WireExhaustive => "wire-exhaustive",
            Rule::Pragma => "pragma",
        }
    }

    /// The short catalogue id (`D1`…`E1`; the pragma check has none).
    pub fn id(self) -> &'static str {
        match self {
            Rule::Wallclock => "D1",
            Rule::HashCollections => "D2",
            Rule::EnvRegistry => "D3",
            Rule::Panic => "P1",
            Rule::UnsafeAudit => "U1",
            Rule::HotPathAlloc => "A1",
            Rule::AtomicOrdering => "O1",
            Rule::ThreadContainment => "T1",
            Rule::WireExhaustive => "E1",
            Rule::Pragma => "-",
        }
    }

    /// One-line description for `--list-rules` and the JSON report.
    pub fn description(self) -> &'static str {
        match self {
            Rule::Wallclock => {
                "no Instant/SystemTime outside freerider-telemetry timers and the bench harness"
            }
            Rule::HashCollections => {
                "no HashMap/HashSet in non-test code (use BTreeMap/BTreeSet or sort before emit)"
            }
            Rule::EnvRegistry => {
                "every FREERIDER_* env var must be listed in freerider-core/src/env.rs"
            }
            Rule::Panic => "no unwrap()/expect()/panic! in library non-test code",
            Rule::UnsafeAudit => {
                "unsafe requires a preceding // SAFETY: comment; unsafe-free crates \
                 must carry #![forbid(unsafe_code)]"
            }
            Rule::HotPathAlloc => {
                "designated hot-path functions must not heap-allocate \
                 (Vec::new, vec!, Box::new, .collect(), .to_vec(), String::from, format!)"
            }
            Rule::AtomicOrdering => {
                "Relaxed atomics only in sanctioned telemetry/metrics counter sites; \
                 SeqCst always requires a justification pragma"
            }
            Rule::ThreadContainment => {
                "std::thread::spawn/scope/Builder only inside freerider-rt and freerider-serve"
            }
            Rule::WireExhaustive => {
                "every FrameType variant needs a decode arm in from_byte and an \
                 encode site in non-test code"
            }
            Rule::Pragma => "// lint: pragmas must name a known rule and give a reason",
        }
    }

    /// Parses a slug — or a lowercase catalogue id like `a1` — back to a
    /// rule (pragmas may name any except `pragma`).
    pub fn from_slug(s: &str) -> Option<Rule> {
        ALL_RULES
            .into_iter()
            .find(|r| *r != Rule::Pragma && (r.slug() == s || r.id().to_ascii_lowercase() == s))
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
    /// The offending source line, whitespace-normalized — the stable part
    /// of the finding's identity (line *numbers* shift on unrelated edits).
    pub norm: String,
    /// Stable identity: FNV-1a 64 over rule slug, path, normalized line
    /// text and the occurrence index among identical triples. Assigned by
    /// [`assign_fingerprints`]; zero until then.
    pub fingerprint: u64,
}

impl Finding {
    /// The canonical `file:line: rule: message` rendering.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {}: {}",
            self.path,
            self.line,
            self.rule.slug(),
            self.message
        )
    }
}

/// Trims and collapses internal whitespace runs, so reformatting alone
/// never changes a finding's identity.
pub fn normalize_line(line: &str) -> String {
    line.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// FNV-1a 64-bit over NUL-separated parts.
fn fnv1a64(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for p in parts {
        eat(p);
    }
    h
}

/// The stable fingerprint of one finding occurrence.
///
/// `occ` disambiguates repeated identical `(rule, path, text)` triples in
/// source order, so two `.unwrap()` on textually identical lines baseline
/// independently, and the *multiset* of fingerprints is invariant under
/// pure line moves.
pub fn fingerprint(slug: &str, path: &str, norm: &str, occ: u32) -> u64 {
    fnv1a64(&[
        slug.as_bytes(),
        path.as_bytes(),
        norm.as_bytes(),
        occ.to_string().as_bytes(),
    ])
}

/// Assigns [`Finding::fingerprint`] over a (path, line)-sorted slice:
/// occurrence indices count identical `(rule, path, norm)` triples in
/// order, which makes the assignment deterministic and line-number-free.
pub fn assign_fingerprints(findings: &mut [Finding]) {
    let mut seen: BTreeMap<(&str, String, String), u32> = BTreeMap::new();
    // Two passes to appease the borrow checker: compute, then write.
    let occs: Vec<u32> = findings
        .iter()
        .map(|f| {
            let key = (f.rule.slug(), f.path.clone(), f.norm.clone());
            let occ = seen.entry(key).or_insert(0);
            let v = *occ;
            *occ += 1;
            v
        })
        .collect();
    for (f, occ) in findings.iter_mut().zip(occs) {
        f.fingerprint = fingerprint(f.rule.slug(), &f.path, &f.norm, occ);
    }
}

/// The result of analyzing a workspace.
#[derive(Debug, Default)]
pub struct Analysis {
    /// All findings, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// The registered `FREERIDER_*` names found in the env registry.
    pub registry: BTreeSet<String>,
}

/// Path (workspace-relative) of the central env-var registry D3 reads.
pub const REGISTRY_PATH: &str = "crates/freerider-core/src/env.rs";

/// Files D1 exempts: the telemetry timer/trace/profile modules are the
/// *only* library code allowed to read the clock (their output is
/// reported separately from the deterministic sections).
const WALLCLOCK_EXEMPT_FILES: [&str; 3] = [
    "crates/freerider-telemetry/src/profile.rs",
    "crates/freerider-telemetry/src/timer.rs",
    "crates/freerider-telemetry/src/trace.rs",
];

/// Crates exempt from D1 and P1 wholesale: the bench harness exists to
/// measure wall-clock time, and the lint's own fixtures never ship.
const BENCH_CRATE: &str = "freerider-bench";

/// A1's built-in designations: `(workspace-relative file, function
/// names)`. Names match [`crate::items::Item::named`] — either the bare
/// qualified name or an `Impl::method` suffix. A name that resolves to no
/// function in an existing designated file is itself an A1 finding, so
/// renames can't silently drop a kernel from enforcement.
pub const HOT_PATHS: &[(&str, &[&str])] = &[
    (
        "crates/freerider-dsp/src/fft.rs",
        &[
            "transform",
            "FftPlan::fft",
            "FftPlan::ifft",
            "FftPlan::process",
            "FftPlan::process64",
            "fft64",
            "ifft64",
        ],
    ),
    (
        "crates/freerider-dsp/src/corr.rs",
        &["normalized_correlation_into", "peak", "first_above"],
    ),
    (
        "crates/freerider-coding/src/convolutional.rs",
        &[
            "parity",
            "depuncture_soft_into",
            "viterbi_decode_soft_scratch",
        ],
    ),
    (
        "crates/freerider-coding/src/crc.rs",
        &["crc32", "crc16_itu", "crc24_ble"],
    ),
    (
        "crates/freerider-coding/src/interleaver.rs",
        &["Interleaver::deinterleave_symbol_soft_into"],
    ),
    (
        "crates/freerider-wifi/src/rx.rs",
        &[
            "Receiver::receive_with",
            "Receiver::detect_with",
            "Receiver::decode_at_with",
            "Receiver::equalize_symbol_into",
            "dc_ensure",
        ],
    ),
    ("crates/freerider-zigbee/src/rx.rs", &["Receiver::receive"]),
    ("crates/freerider-ble/src/rx.rs", &["Receiver::receive"]),
];

/// O1: file prefixes where `Relaxed` is sanctioned — the telemetry
/// counters (deterministic work counts, monotonic aggregation) and the
/// server's metrics registry. Everywhere else a Relaxed load/store needs
/// a pragma arguing why no ordering is required.
const O1_RELAXED_SANCTIONED_PREFIXES: [&str; 1] = ["crates/freerider-telemetry/src/"];

/// O1: individual sanctioned files outside the prefix list.
const O1_RELAXED_SANCTIONED_FILES: [&str; 2] = [
    "crates/freerider-serve/src/metrics.rs",
    "crates/freerider-serve/src/queue.rs",
];

/// T1: the only crates allowed to create threads — the deterministic
/// runtime (owns the worker pool) and the server (session-per-connection).
const THREAD_CRATES: [&str; 2] = ["freerider-rt", "freerider-serve"];

/// E1: the wire-protocol enum the exhaustiveness check anchors on.
const WIRE_ENUM: &str = "FrameType";

/// E1: the decoder every variant must appear in (as a match-arm ident).
const WIRE_DECODE_FN: &str = "from_byte";

/// Runs every rule over the given files (as discovered by
/// [`crate::walk::discover`]). `root` is the workspace root.
pub fn analyze(root: &Path, files: &[SourceFile]) -> io::Result<Analysis> {
    let registry = load_registry(root);
    let mut findings = Vec::new();
    // Per-crate U1 state: does the lib target contain `unsafe`, and does
    // its crate root carry `#![forbid(unsafe_code)]` (plus its normalized
    // first line, for the fingerprint of the crate-level finding)?
    let mut lib_unsafe: BTreeMap<String, bool> = BTreeMap::new();
    let mut lib_forbid: BTreeMap<String, (String, bool, String)> = BTreeMap::new();
    // E1 accumulates across files: the wire enum's variants, every decode
    // arm, and every encode site, then settles after the loop.
    let mut wire = WireScan::default();

    for file in files {
        let src = fs::read_to_string(&file.abs)?;
        let ctx = FileCtx::new(file, &src, &registry);
        ctx.check(&mut findings);
        ctx.scan_wire(&mut wire);
        if file.kind == FileKind::Lib {
            let has_unsafe = ctx.has_unsafe();
            *lib_unsafe.entry(file.crate_name.clone()).or_insert(false) |= has_unsafe;
            if file.is_lib_root {
                lib_forbid.insert(
                    file.crate_name.clone(),
                    (file.rel.clone(), ctx.has_forbid_unsafe(), ctx.norm_line(1)),
                );
            }
        }
    }

    // U1, crate half: a crate with no unsafe in its library target must
    // ban it outright, so the audit burden can never grow silently.
    for (crate_name, (lib_rel, has_forbid, first_norm)) in &lib_forbid {
        let has_unsafe = lib_unsafe.get(crate_name).copied().unwrap_or(false);
        if !has_unsafe && !has_forbid {
            findings.push(Finding {
                rule: Rule::UnsafeAudit,
                path: lib_rel.clone(),
                line: 1,
                message: format!(
                    "crate `{crate_name}` has no unsafe code but its crate root \
                     lacks #![forbid(unsafe_code)]"
                ),
                norm: first_norm.clone(),
                fingerprint: 0,
            });
        }
    }

    // E1, settle: every declared variant must decode and encode somewhere.
    wire.settle(&mut findings);

    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    assign_fingerprints(&mut findings);
    Ok(Analysis {
        findings,
        files_scanned: files.len(),
        registry,
    })
}

/// One declared wire-enum variant: `(name, line, normalized text, e1-waived)`.
type WireVariant = (String, u32, String, bool);

/// E1 working state, accumulated file by file.
#[derive(Debug, Default)]
struct WireScan {
    /// Each declaration of the wire enum: file, then its variants.
    enums: Vec<(String, Vec<WireVariant>)>,
    /// Idents appearing inside any `FrameType::from_byte` body.
    decode_idents: BTreeSet<String>,
    /// Whether a `from_byte` decoder was seen at all.
    saw_decoder: bool,
    /// Variants referenced as `FrameType::X` in non-test code outside the
    /// declaration and the decoder.
    encode_refs: BTreeSet<String>,
}

impl WireScan {
    /// Emits the cross-file findings once every file has been scanned.
    fn settle(&self, out: &mut Vec<Finding>) {
        for (path, variants) in &self.enums {
            for (name, line, norm, waived) in variants {
                if *waived {
                    continue;
                }
                if !self.saw_decoder {
                    out.push(Finding {
                        rule: Rule::WireExhaustive,
                        path: path.clone(),
                        line: *line,
                        message: format!(
                            "`{WIRE_ENUM}::{name}` has no decoder: no \
                             `{WIRE_ENUM}::{WIRE_DECODE_FN}` function found"
                        ),
                        norm: norm.clone(),
                        fingerprint: 0,
                    });
                } else if !self.decode_idents.contains(name) {
                    out.push(Finding {
                        rule: Rule::WireExhaustive,
                        path: path.clone(),
                        line: *line,
                        message: format!(
                            "`{WIRE_ENUM}::{name}` has no decode arm in \
                             `{WIRE_ENUM}::{WIRE_DECODE_FN}` — a peer sending this \
                             frame type would be rejected"
                        ),
                        norm: norm.clone(),
                        fingerprint: 0,
                    });
                }
                if !self.encode_refs.contains(name) {
                    out.push(Finding {
                        rule: Rule::WireExhaustive,
                        path: path.clone(),
                        line: *line,
                        message: format!(
                            "`{WIRE_ENUM}::{name}` is never encoded: no \
                             `{WIRE_ENUM}::{name}` reference outside the declaration \
                             and the decoder"
                        ),
                        norm: norm.clone(),
                        fingerprint: 0,
                    });
                }
            }
        }
    }
}

/// Loads the registered env-var names: every `FREERIDER_*` string literal
/// in [`REGISTRY_PATH`]. A missing registry file means an empty registry
/// (so every knob is flagged until one is created).
fn load_registry(root: &Path) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    if let Ok(src) = fs::read_to_string(root.join(REGISTRY_PATH)) {
        for tok in lex(&src) {
            if let Tok::Str(s) = &tok.kind {
                for name in freerider_names(s) {
                    names.insert(name);
                }
            }
        }
    }
    names
}

/// Extracts every maximal `FREERIDER_[A-Z0-9_]+` run from a string.
fn freerider_names(s: &str) -> Vec<String> {
    const PREFIX: &str = "FREERIDER_";
    let bytes = s.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(off) = s[i..].find(PREFIX) {
        let start = i + off;
        let mut end = start + PREFIX.len();
        while end < bytes.len()
            && (bytes[end].is_ascii_uppercase()
                || bytes[end].is_ascii_digit()
                || bytes[end] == b'_')
        {
            end += 1;
        }
        if end > start + PREFIX.len() {
            out.push(s[start..end].to_string());
        }
        i = end;
    }
    out
}

/// Everything the per-file checks need, computed once per file.
struct FileCtx<'a> {
    file: &'a SourceFile,
    registry: &'a BTreeSet<String>,
    tokens: Vec<Token>,
    /// The item tree: module/impl structure, fn bodies, enum variants.
    items: ItemTree,
    /// Normalized source lines (0-indexed), for finding fingerprints.
    norm_lines: Vec<String>,
    /// True for tokens inside `#[cfg(test)]` / `#[test]` items.
    in_test: Vec<bool>,
    /// Per rule: lines waived by a parsed `// lint: allow(…)` pragma.
    allowed: BTreeMap<Rule, BTreeSet<u32>>,
    /// Malformed-pragma findings discovered while parsing comments.
    pragma_errors: Vec<(u32, String)>,
    /// End lines of `SAFETY:` comments (for U1 adjacency).
    safety_lines: BTreeSet<u32>,
    /// A1: token spans of designated hot-path fn bodies, with the
    /// function's qualified name (built-ins plus `// lint: hot-path`
    /// markers).
    hot_spans: Vec<(usize, usize, String)>,
    /// A1: built-in designations that resolved to no function here.
    unresolved_hot: Vec<&'static str>,
}

impl<'a> FileCtx<'a> {
    fn new(file: &'a SourceFile, src: &str, registry: &'a BTreeSet<String>) -> Self {
        let tokens = lex(src);
        let in_test = test_mask(&tokens);
        let items = ItemTree::parse(&tokens);
        let norm_lines = src.lines().map(normalize_line).collect();
        let mut ctx = FileCtx {
            file,
            registry,
            in_test,
            allowed: BTreeMap::new(),
            pragma_errors: Vec::new(),
            safety_lines: BTreeSet::new(),
            hot_spans: Vec::new(),
            unresolved_hot: Vec::new(),
            items,
            norm_lines,
            tokens,
        };
        ctx.scan_comments();
        ctx.resolve_hot_paths();
        ctx
    }

    /// The normalized text of 1-based `line` ("" when out of range).
    fn norm_line(&self, line: u32) -> String {
        self.norm_lines
            .get(line.saturating_sub(1) as usize)
            .cloned()
            .unwrap_or_default()
    }

    /// Parses pragmas, hot-path markers and SAFETY markers out of the
    /// comment tokens.
    fn scan_comments(&mut self) {
        for i in 0..self.tokens.len() {
            let (text, line, end_line) = match &self.tokens[i].kind {
                Tok::LineComment(t) => (t.clone(), self.tokens[i].line, self.tokens[i].end_line),
                Tok::BlockComment(t) => (t.clone(), self.tokens[i].line, self.tokens[i].end_line),
                _ => continue,
            };
            let trimmed = text.trim_start_matches(['/', '!', '*', ' ', '\t']);
            if trimmed.starts_with("SAFETY:") {
                self.safety_lines.insert(end_line);
            }
            match parse_pragma(&text) {
                Ok(None) => {}
                Ok(Some(Pragma::Allow(rule, _reason))) => {
                    let target = self.pragma_target(i, line);
                    self.allowed.entry(rule).or_default().insert(target);
                }
                Ok(Some(Pragma::HotPath)) => {
                    let target = self.pragma_target(i, line);
                    // Designate the first function at or below the marker
                    // (attributes between marker and `fn` are fine: items
                    // record the `fn` keyword's line).
                    let marked = self
                        .items
                        .fns()
                        .filter(|f| f.line >= target)
                        .min_by_key(|f| f.line)
                        .map(|f| (f.body, f.qual.clone()));
                    match marked {
                        Some((Some((s, e)), qual)) => self.hot_spans.push((s, e, qual)),
                        Some((None, _)) => {} // bodyless decl: nothing to check
                        None => self.pragma_errors.push((
                            line,
                            "`lint: hot-path` marker precedes no function".to_string(),
                        )),
                    }
                }
                Err(msg) => self.pragma_errors.push((line, msg)),
            }
        }
    }

    /// Resolves this file's built-in [`HOT_PATHS`] designations.
    fn resolve_hot_paths(&mut self) {
        for (rel, names) in HOT_PATHS {
            if *rel != self.file.rel {
                continue;
            }
            for name in *names {
                let mut resolved = false;
                for f in self.items.fns().filter(|f| f.named(name)) {
                    resolved = true;
                    if let Some((s, e)) = f.body {
                        self.hot_spans.push((s, e, f.qual.clone()));
                    }
                }
                if !resolved {
                    self.unresolved_hot.push(name);
                }
            }
        }
    }

    /// The qualified name of the designated hot fn owning token `idx`.
    fn hot_owner(&self, idx: usize) -> Option<&str> {
        self.hot_spans
            .iter()
            .find(|(s, e, _)| *s <= idx && idx <= *e)
            .map(|(_, _, q)| q.as_str())
    }

    /// E1 contributions of this file: wire-enum declarations, decode-arm
    /// idents, and encode references.
    fn scan_wire(&self, wire: &mut WireScan) {
        // Declarations.
        let mut excluded: Vec<(usize, usize)> = Vec::new();
        for e in self.items.enums().filter(|e| e.name == WIRE_ENUM) {
            excluded.push(e.span);
            let waived = self.allowed.get(&Rule::WireExhaustive);
            wire.enums.push((
                self.file.rel.clone(),
                e.variants
                    .iter()
                    .map(|v| {
                        (
                            v.name.clone(),
                            v.line,
                            self.norm_line(v.line),
                            waived.is_some_and(|w| w.contains(&v.line)),
                        )
                    })
                    .collect(),
            ));
        }
        // Decode arms: idents inside `FrameType::from_byte`'s body.
        let decode_pat = format!("{WIRE_ENUM}::{WIRE_DECODE_FN}");
        for f in self.items.fns().filter(|f| f.named(&decode_pat)) {
            wire.saw_decoder = true;
            if let Some((s, e)) = f.body {
                excluded.push((s, e));
                for t in &self.tokens[s..=e.min(self.tokens.len() - 1)] {
                    if let Tok::Ident(name) = &t.kind {
                        wire.decode_idents.insert(name.clone());
                    }
                }
            }
        }
        // Encode sites: `FrameType :: <Variant>` in non-test code outside
        // the declaration and the decoder.
        let n = self.tokens.len();
        for i in 0..n.saturating_sub(3) {
            if excluded.iter().any(|&(s, e)| s <= i && i <= e) {
                continue;
            }
            if self.file.kind == FileKind::Test || self.in_test[i] {
                continue;
            }
            let quad = (
                &self.tokens[i].kind,
                &self.tokens[i + 1].kind,
                &self.tokens[i + 2].kind,
                &self.tokens[i + 3].kind,
            );
            if let (Tok::Ident(head), Tok::Punct(':'), Tok::Punct(':'), Tok::Ident(v)) = quad {
                if head == WIRE_ENUM {
                    wire.encode_refs.insert(v.clone());
                }
            }
        }
    }

    /// The line a pragma waives: its own line when it trails code, else
    /// the line of the next code token below it.
    fn pragma_target(&self, comment_idx: usize, comment_line: u32) -> u32 {
        let trails_code = self.tokens[..comment_idx]
            .iter()
            .rev()
            .take_while(|t| t.end_line >= comment_line)
            .any(|t| !is_comment(t) && t.end_line == comment_line);
        if trails_code {
            return comment_line;
        }
        self.tokens[comment_idx + 1..]
            .iter()
            .find(|t| !is_comment(t))
            .map(|t| t.line)
            .unwrap_or(comment_line)
    }

    fn is_allowed(&self, rule: Rule, line: u32) -> bool {
        self.allowed.get(&rule).is_some_and(|s| s.contains(&line))
    }

    /// True when the file as a whole is test code.
    fn is_test_file(&self) -> bool {
        self.file.kind == FileKind::Test
    }

    fn has_unsafe(&self) -> bool {
        self.tokens
            .iter()
            .any(|t| matches!(&t.kind, Tok::Ident(s) if s == "unsafe"))
    }

    /// Detects `#![forbid(unsafe_code)]` (possibly with more lints listed).
    fn has_forbid_unsafe(&self) -> bool {
        let code: Vec<&Token> = self.tokens.iter().filter(|t| !is_comment(t)).collect();
        for w in 0..code.len().saturating_sub(4) {
            if matches!(code[w].kind, Tok::Punct('#'))
                && matches!(code[w + 1].kind, Tok::Punct('!'))
                && matches!(code[w + 2].kind, Tok::Punct('['))
                && matches!(&code[w + 3].kind, Tok::Ident(s) if s == "forbid")
            {
                for t in &code[w + 4..] {
                    match &t.kind {
                        Tok::Punct(']') => break,
                        Tok::Ident(s) if s == "unsafe_code" => return true,
                        _ => {}
                    }
                }
            }
        }
        false
    }

    /// Runs all per-file rules, appending to `out`.
    fn check(&self, out: &mut Vec<Finding>) {
        for (line, msg) in &self.pragma_errors {
            self.emit(out, Rule::Pragma, *line, msg.clone());
        }
        for name in &self.unresolved_hot {
            self.emit(
                out,
                Rule::HotPathAlloc,
                1,
                format!(
                    "hot-path designation `{name}` matches no function in this \
                     file (renamed or removed? update rules::HOT_PATHS)"
                ),
            );
        }

        let code: Vec<(usize, &Token)> = self
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !is_comment(t))
            .collect();

        for (pos, &(idx, tok)) in code.iter().enumerate() {
            let test_code = self.is_test_file() || self.in_test[idx];
            match &tok.kind {
                Tok::Ident(name) => {
                    self.check_ident(out, &code, pos, idx, name, tok.line, test_code);
                }
                Tok::Str(s) => self.check_string(out, s, tok.line),
                _ => {}
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // one site; splitting loses clarity
    fn check_ident(
        &self,
        out: &mut Vec<Finding>,
        code: &[(usize, &Token)],
        pos: usize,
        idx: usize,
        name: &str,
        line: u32,
        test_code: bool,
    ) {
        let next_is = |c: char| {
            code.get(pos + 1)
                .is_some_and(|(_, t)| matches!(t.kind, Tok::Punct(p) if p == c))
        };
        let prev_is_dot = pos > 0 && matches!(code[pos - 1].1.kind, Tok::Punct('.'));
        // `name::member` — the member ident after a `::` path separator.
        let path_member = || -> Option<&str> {
            if code.get(pos + 1).map(|(_, t)| &t.kind) == Some(&Tok::Punct(':'))
                && code.get(pos + 2).map(|(_, t)| &t.kind) == Some(&Tok::Punct(':'))
            {
                match code.get(pos + 3).map(|(_, t)| &t.kind) {
                    Some(Tok::Ident(m)) => Some(m.as_str()),
                    _ => None,
                }
            } else {
                None
            }
        };
        // `prefix :: name` — the path head two puncts back.
        let path_head = || -> Option<&str> {
            if pos >= 3
                && matches!(code[pos - 1].1.kind, Tok::Punct(':'))
                && matches!(code[pos - 2].1.kind, Tok::Punct(':'))
            {
                match &code[pos - 3].1.kind {
                    Tok::Ident(h) => Some(h.as_str()),
                    _ => None,
                }
            } else {
                None
            }
        };

        // A1 — heap allocation inside a designated hot-path function.
        if !test_code {
            if let Some(owner) = self.hot_owner(idx) {
                let owner = owner.to_string();
                let construct: Option<String> = match name {
                    "Vec" | "String" => path_member()
                        .filter(|m| matches!(*m, "new" | "with_capacity" | "from"))
                        .map(|m| format!("{name}::{m}")),
                    "Box" => path_member()
                        .filter(|m| *m == "new")
                        .map(|m| format!("Box::{m}")),
                    "vec" | "format" if next_is('!') => Some(format!("{name}!")),
                    "collect" | "to_vec" | "to_owned" | "to_string"
                        if prev_is_dot && (next_is('(') || next_is(':')) =>
                    {
                        Some(format!(".{name}()"))
                    }
                    _ => None,
                };
                if let Some(c) = construct {
                    self.emit_unless_allowed(
                        out,
                        Rule::HotPathAlloc,
                        line,
                        format!(
                            "`{c}` allocates inside designated hot-path function \
                             `{owner}`; reuse scratch/arena buffers, or annotate \
                             `// lint: allow(a1) — <why this allocation is cold>`"
                        ),
                    );
                }
            }
        }

        // O1 — atomic-ordering audit.
        if !test_code {
            match name {
                "Relaxed" if !self.relaxed_sanctioned() => {
                    self.emit_unless_allowed(
                        out,
                        Rule::AtomicOrdering,
                        line,
                        "`Ordering::Relaxed` outside the sanctioned telemetry/metrics \
                         counter sites; use Acquire/Release for synchronization, or \
                         annotate `// lint: allow(o1) — <why no ordering is needed>`"
                            .to_string(),
                    );
                }
                "SeqCst" => {
                    self.emit_unless_allowed(
                        out,
                        Rule::AtomicOrdering,
                        line,
                        "`Ordering::SeqCst` is a red flag in this codebase (usually a \
                         stand-in for reasoning); justify it with \
                         `// lint: allow(o1) — <why sequential consistency is required>` \
                         or weaken the ordering"
                            .to_string(),
                    );
                }
                _ => {}
            }
        }

        // T1 — thread containment: `thread::{spawn,scope,Builder}` outside
        // the runtime and server crates.
        if !test_code
            && matches!(name, "spawn" | "scope" | "Builder")
            && path_head() == Some("thread")
            && !THREAD_CRATES.contains(&self.file.crate_name.as_str())
        {
            self.emit_unless_allowed(
                out,
                Rule::ThreadContainment,
                line,
                format!(
                    "`thread::{name}` outside freerider-rt/freerider-serve: all \
                     parallelism must go through the deterministic runtime \
                     (freerider_rt::map) so results stay thread-count-invariant"
                ),
            );
        }

        match name {
            // D1 — wall-clock.
            "Instant" | "SystemTime" if !test_code && self.wallclock_applies() => {
                self.emit_unless_allowed(
                    out,
                    Rule::Wallclock,
                    line,
                    format!(
                        "`{name}` is wall-clock time; deterministic code must not read the \
                     clock (telemetry timers and the bench harness are the exemptions)"
                    ),
                );
            }
            // D2 — hashed collections.
            "HashMap" | "HashSet" if !test_code => {
                self.emit_unless_allowed(
                    out,
                    Rule::HashCollections,
                    line,
                    format!(
                        "`{name}` iterates in nondeterministic order; use BTreeMap/BTreeSet, \
                     or sort before emitting and annotate \
                     `// lint: allow(hash-collections) — <why sorted>`"
                    ),
                );
            }
            // P1 — panic policy.
            "unwrap" | "expect"
                if !test_code && self.panic_applies() && prev_is_dot && next_is('(') =>
            {
                self.emit_unless_allowed(
                    out,
                    Rule::Panic,
                    line,
                    format!(
                        ".{name}() can abort the process; return a typed error, or annotate \
                     `// lint: allow(panic) — <why this cannot fail>`"
                    ),
                );
            }
            "panic" if !test_code && self.panic_applies() && next_is('!') => {
                self.emit_unless_allowed(
                    out,
                    Rule::Panic,
                    line,
                    "panic! aborts the process; return a typed error, or annotate \
                     `// lint: allow(panic) — <why this is unreachable>`"
                        .to_string(),
                );
            }
            // U1 — per-site half: every `unsafe` needs an adjacent SAFETY
            // comment (applies to test code too — audits don't stop at
            // #[cfg(test)]).
            "unsafe" => {
                let documented = self.safety_lines.contains(&line)
                    || self.safety_lines.contains(&line.saturating_sub(1));
                if !documented {
                    self.emit(
                        out,
                        Rule::UnsafeAudit,
                        line,
                        "`unsafe` without an immediately preceding // SAFETY: comment \
                         stating why the invariants hold"
                            .to_string(),
                    );
                }
            }
            _ => {}
        }
    }

    /// D3 — every `FREERIDER_*` name mentioned in a string literal must be
    /// registered. Applies everywhere (tests reading an unregistered knob
    /// are still drift); the registry file itself is exempt.
    fn check_string(&self, out: &mut Vec<Finding>, s: &str, line: u32) {
        if self.file.rel == REGISTRY_PATH {
            return;
        }
        for name in freerider_names(s) {
            if !self.registry.contains(&name) {
                self.emit_unless_allowed(
                    out,
                    Rule::EnvRegistry,
                    line,
                    format!(
                        "`{name}` is not listed in the env-var registry \
                     ({REGISTRY_PATH}); register it so knobs stay documented"
                    ),
                );
            }
        }
    }

    fn wallclock_applies(&self) -> bool {
        self.file.crate_name != BENCH_CRATE
            && !WALLCLOCK_EXEMPT_FILES.contains(&self.file.rel.as_str())
    }

    fn panic_applies(&self) -> bool {
        self.file.kind == FileKind::Lib && self.file.crate_name != BENCH_CRATE
    }

    /// O1: is `Relaxed` sanctioned in this file (counter sites)?
    fn relaxed_sanctioned(&self) -> bool {
        O1_RELAXED_SANCTIONED_PREFIXES
            .iter()
            .any(|p| self.file.rel.starts_with(p))
            || O1_RELAXED_SANCTIONED_FILES.contains(&self.file.rel.as_str())
    }

    fn emit_unless_allowed(&self, out: &mut Vec<Finding>, rule: Rule, line: u32, msg: String) {
        if !self.is_allowed(rule, line) {
            self.emit(out, rule, line, msg);
        }
    }

    fn emit(&self, out: &mut Vec<Finding>, rule: Rule, line: u32, message: String) {
        out.push(Finding {
            rule,
            path: self.file.rel.clone(),
            line,
            message,
            norm: self.norm_line(line),
            fingerprint: 0,
        });
    }
}

fn is_comment(t: &Token) -> bool {
    matches!(t.kind, Tok::LineComment(_) | Tok::BlockComment(_))
}

/// A parsed `// lint:` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pragma {
    /// `lint: allow(<rule>) — <reason>`: waive `rule` on the target line.
    Allow(Rule, String),
    /// `lint: hot-path`: designate the next function as an A1 hot path.
    HotPath,
}

/// Parses one comment as a pragma.
///
/// Grammar: `lint: allow(<slug>) <sep> <reason>` where `<slug>` is a rule
/// slug or lowercase catalogue id (`a1`), `<sep>` is `—`, `-` or `:`
/// (optional) and `<reason>` is non-empty — or the bare marker
/// `lint: hot-path` (optionally followed by a `<sep> <note>`). Returns
/// `Ok(None)` for comments that are not pragmas at all, and `Err` for
/// comments that start with `lint:` but do not parse — a typo'd pragma
/// silently allowing nothing would be worse than a finding.
pub fn parse_pragma(text: &str) -> Result<Option<Pragma>, String> {
    let t = text.trim();
    let Some(rest) = t.strip_prefix("lint:") else {
        return Ok(None);
    };
    let rest = rest.trim_start();
    if let Some(after) = rest.strip_prefix("hot-path") {
        let after = after.trim_start();
        if after.is_empty() || after.starts_with(['—', '-', ':', '–']) {
            return Ok(Some(Pragma::HotPath));
        }
        return Err(format!(
            "malformed pragma `{t}`: `lint: hot-path` takes no arguments \
             (an optional `— <note>` is allowed)"
        ));
    }
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Err(format!(
            "malformed pragma `{t}`: expected `lint: allow(<rule>) — <reason>` \
             or `lint: hot-path`"
        ));
    };
    let Some(close) = rest.find(')') else {
        return Err(format!("malformed pragma `{t}`: unclosed `allow(`"));
    };
    let slug = rest[..close].trim();
    let Some(rule) = Rule::from_slug(slug) else {
        return Err(format!(
            "pragma names unknown rule `{slug}` (known: wallclock, hash-collections, \
             env-registry, panic, unsafe-audit, hot-path-alloc, atomic-ordering, \
             thread-containment, wire-exhaustive — or ids d1/d2/d3/p1/u1/a1/o1/t1/e1)"
        ));
    };
    let reason: String = rest[close + 1..]
        .trim_start_matches([' ', '\t', '—', '-', ':', '–'])
        .trim()
        .to_string();
    if reason.is_empty() {
        return Err(format!(
            "pragma `allow({slug})` has no reason; write \
             `// lint: allow({slug}) — <why this is sound>`"
        ));
    }
    Ok(Some(Pragma::Allow(rule, reason)))
}

/// Marks tokens belonging to `#[cfg(test)]` / `#[test]` items (the
/// attribute, any stacked attributes after it, and the item body through
/// its closing `}` or `;`).
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !is_comment(&tokens[i]))
        .collect();
    let kind = |ci: usize| -> &Tok { &tokens[code[ci]].kind };

    let mut ci = 0;
    while ci < code.len() {
        if matches!(kind(ci), Tok::Punct('#'))
            && ci + 1 < code.len()
            && matches!(kind(ci + 1), Tok::Punct('['))
        {
            if let Some(close) = matching(&code, tokens, ci + 1, '[', ']') {
                if attr_is_test(tokens, &code[ci + 2..close]) {
                    // Consume stacked attributes after the matching one.
                    let mut end = close;
                    while end + 2 < code.len()
                        && matches!(kind(end + 1), Tok::Punct('#'))
                        && matches!(kind(end + 2), Tok::Punct('['))
                    {
                        match matching(&code, tokens, end + 2, '[', ']') {
                            Some(c) => end = c,
                            None => break,
                        }
                    }
                    let item_end = item_end(&code, tokens, end + 1);
                    for &ti in &code[ci..=item_end.min(code.len() - 1)] {
                        mask[ti] = true;
                    }
                    ci = item_end + 1;
                    continue;
                }
                ci = close + 1;
                continue;
            }
        }
        ci += 1;
    }
    mask
}

/// Finds the code-index of the delimiter matching `code[open_ci]`.
fn matching(
    code: &[usize],
    tokens: &[Token],
    open_ci: usize,
    open: char,
    close: char,
) -> Option<usize> {
    let mut depth = 0usize;
    for (ci, &ti) in code.iter().enumerate().skip(open_ci) {
        match tokens[ti].kind {
            Tok::Punct(p) if p == open => depth += 1,
            Tok::Punct(p) if p == close => {
                depth -= 1;
                if depth == 0 {
                    return Some(ci);
                }
            }
            _ => {}
        }
    }
    None
}

/// True when the attribute token span means "test code": `#[test]`, or a
/// `cfg`/`cfg_attr` whose predicate mentions `test` outside any `not(…)`.
fn attr_is_test(tokens: &[Token], inner: &[usize]) -> bool {
    let idents: Vec<&str> = inner
        .iter()
        .filter_map(|&ti| match &tokens[ti].kind {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    if idents.as_slice() == ["test"] {
        return true;
    }
    if idents.first() != Some(&"cfg") {
        return false;
    }
    // Walk the predicate tracking which head ident owns each paren group,
    // so `cfg(not(test))` is recognised as NOT test code.
    let mut heads: Vec<String> = Vec::new();
    let mut last_ident: Option<String> = None;
    for &ti in inner {
        match &tokens[ti].kind {
            Tok::Ident(s) => {
                if s == "test" && !heads.iter().any(|h| h == "not") {
                    return true;
                }
                last_ident = Some(s.clone());
            }
            Tok::Punct('(') => heads.push(last_ident.take().unwrap_or_default()),
            Tok::Punct(')') => {
                heads.pop();
            }
            _ => last_ident = None,
        }
    }
    false
}

/// Code-index of the last token of the item starting at `start_ci`: the
/// first `;` at depth 0, or the `}` matching the first `{`.
fn item_end(code: &[usize], tokens: &[Token], start_ci: usize) -> usize {
    let mut depth = 0usize;
    for (ci, &ti) in code.iter().enumerate().skip(start_ci) {
        match tokens[ti].kind {
            Tok::Punct(';') if depth == 0 => return ci,
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return ci;
                }
            }
            _ => {}
        }
    }
    code.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::SourceFile;
    use std::path::PathBuf;

    fn lib_file(rel: &str, crate_name: &str) -> SourceFile {
        SourceFile {
            rel: rel.to_string(),
            abs: PathBuf::new(),
            crate_name: crate_name.to_string(),
            kind: FileKind::Lib,
            is_lib_root: rel.ends_with("lib.rs"),
        }
    }

    fn run(src: &str) -> Vec<Finding> {
        let file = lib_file("crates/x/src/m.rs", "x");
        let registry = BTreeSet::from(["FREERIDER_THREADS".to_string()]);
        let ctx = FileCtx::new(&file, src, &registry);
        let mut out = Vec::new();
        ctx.check(&mut out);
        out
    }

    fn slugs(src: &str) -> Vec<&'static str> {
        run(src).into_iter().map(|f| f.rule.slug()).collect()
    }

    #[test]
    fn wallclock_flags_instant_and_systemtime() {
        assert_eq!(
            slugs("use std::time::Instant;\nlet t = SystemTime::now();"),
            vec!["wallclock", "wallclock"]
        );
    }

    #[test]
    fn wallclock_in_comment_or_string_is_fine() {
        assert!(slugs("// Instant::now()\nlet s = \"SystemTime\";").is_empty());
    }

    #[test]
    fn hash_collections_flagged_with_pragma_escape() {
        assert_eq!(
            slugs("use std::collections::HashMap;"),
            vec!["hash-collections"]
        );
        assert!(slugs(
            "// lint: allow(hash-collections) — keys sorted before emit\n\
             use std::collections::HashMap;"
        )
        .is_empty());
    }

    #[test]
    fn env_registry_checks_literals() {
        assert!(slugs(r#"let v = std::env::var("FREERIDER_THREADS");"#).is_empty());
        assert_eq!(
            slugs(r#"let v = std::env::var("FREERIDER_BOGUS");"#), // lint: allow(env-registry) — negative fixture for this very rule
            vec!["env-registry"]
        );
        // Substring inside a usage string counts too.
        assert_eq!(
            slugs(r#"let u = "set FREERIDER_NOPE=1 to break things";"#), // lint: allow(env-registry) — negative fixture for this very rule
            vec!["env-registry"]
        );
    }

    #[test]
    fn panic_policy_on_method_calls_only() {
        assert_eq!(
            slugs("fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"no\"); }"),
            vec!["panic", "panic", "panic"]
        );
        // unwrap_or / expect-like idents and field accesses don't match.
        assert!(slugs("fn f() { x.unwrap_or(0); let unwrap = 3; s.expected(); }").is_empty());
    }

    #[test]
    fn panic_pragma_trailing_and_preceding() {
        assert!(slugs("x.unwrap(); // lint: allow(panic) — len checked above").is_empty());
        assert!(slugs("// lint: allow(panic) — infallible on String\nx.unwrap();").is_empty());
        // A trailing pragma does not leak onto the next line.
        assert_eq!(
            slugs("x.unwrap(); // lint: allow(panic) — checked\ny.unwrap();"),
            vec!["panic"]
        );
    }

    #[test]
    fn cfg_test_items_are_exempt_from_panic_and_hash_rules() {
        let src = "\
fn prod() { real(); }
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() { x.unwrap(); let i = Instant::now(); }
}
";
        // D1/D2/P1 all quiet; nothing else fires.
        assert!(slugs(src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        assert_eq!(
            slugs("#[cfg(not(test))]\nfn f() { x.unwrap(); }"),
            vec!["panic"]
        );
    }

    #[test]
    fn test_attr_fn_is_exempt_but_following_code_is_not() {
        let src = "\
#[test]
fn t() { x.unwrap(); }
fn prod() { y.unwrap(); }
";
        let found = run(src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn unsafe_requires_adjacent_safety_comment() {
        assert_eq!(
            slugs("fn f() { unsafe { danger() } }"),
            vec!["unsafe-audit"]
        );
        assert!(slugs(
            "// SAFETY: index bounded by the loop condition above\n\
             fn f() { unsafe { danger() } }"
        )
        .is_empty());
        // A SAFETY comment two lines up is not "immediately preceding".
        assert_eq!(
            slugs("// SAFETY: stale\n\nlet _pad = 0;\nfn f() { unsafe { danger() } }"),
            vec!["unsafe-audit"]
        );
    }

    #[test]
    fn malformed_pragmas_are_findings() {
        assert_eq!(
            slugs("// lint: allow(panics) — typo'd rule\nf();"),
            vec!["pragma"]
        );
        assert_eq!(
            slugs("// lint: allow(panic)\nx.unwrap();"),
            vec!["pragma", "panic"]
        );
        assert_eq!(
            slugs("// lint: disallow(panic) — nope\nf();"),
            vec!["pragma"]
        );
    }

    #[test]
    fn pragma_parser_accepts_separator_variants() {
        for sep in ["—", "-", ":", ""] {
            let text = format!(" lint: allow(panic) {sep} reason here");
            let p = parse_pragma(&text).expect("parses").expect("is a pragma");
            assert_eq!(p, Pragma::Allow(Rule::Panic, "reason here".to_string()));
        }
        assert_eq!(parse_pragma(" ordinary comment"), Ok(None));
    }

    #[test]
    fn pragma_parser_accepts_lowercase_ids_and_hot_path_marker() {
        assert_eq!(
            parse_pragma(" lint: allow(a1) — scratch reused"),
            Ok(Some(Pragma::Allow(
                Rule::HotPathAlloc,
                "scratch reused".to_string()
            )))
        );
        assert_eq!(parse_pragma(" lint: hot-path"), Ok(Some(Pragma::HotPath)));
        assert_eq!(
            parse_pragma(" lint: hot-path — inner demod kernel"),
            Ok(Some(Pragma::HotPath))
        );
        assert!(parse_pragma(" lint: hot-path(yes)").is_err());
    }

    fn run_in(rel: &str, crate_name: &str, src: &str) -> Vec<Finding> {
        let file = lib_file(rel, crate_name);
        let registry = BTreeSet::from(["FREERIDER_THREADS".to_string()]);
        let ctx = FileCtx::new(&file, src, &registry);
        let mut out = Vec::new();
        ctx.check(&mut out);
        out
    }

    #[test]
    fn a1_fires_only_inside_marker_designated_fns() {
        let src = "\
// lint: hot-path
fn demod(out: &mut Vec<u8>) { let v = Vec::new(); let w = vec![0u8; 4]; }
fn setup() -> Vec<u8> { Vec::with_capacity(64) }
";
        let found = run(src);
        let a1: Vec<u32> = found
            .iter()
            .filter(|f| f.rule == Rule::HotPathAlloc)
            .map(|f| f.line)
            .collect();
        assert_eq!(a1, vec![2, 2], "both allocs in demod, none in setup");
    }

    #[test]
    fn a1_detects_method_call_and_macro_allocations() {
        let src = "\
// lint: hot-path
fn hot(x: &[u8]) -> usize {
    let a: Vec<u8> = x.iter().copied().collect();
    let b = x.to_vec();
    let c = format!(\"{}\", a.len());
    let d = Box::new(b);
    c.len() + d.len()
}
";
        let msgs: Vec<String> = run(src)
            .into_iter()
            .filter(|f| f.rule == Rule::HotPathAlloc)
            .map(|f| f.message)
            .collect();
        assert_eq!(msgs.len(), 4, "{msgs:?}");
        assert!(msgs[0].contains(".collect()") && msgs[0].contains("`hot`"));
        assert!(msgs[1].contains(".to_vec()"));
        assert!(msgs[2].contains("format!"));
        assert!(msgs[3].contains("Box::new"));
    }

    #[test]
    fn a1_pragma_waives_one_line() {
        let src = "\
// lint: hot-path
fn hot() {
    // lint: allow(a1) — first-call growth only; reused thereafter
    let v = Vec::with_capacity(64);
    let w = Vec::new();
}
";
        let a1: Vec<u32> = run(src)
            .into_iter()
            .filter(|f| f.rule == Rule::HotPathAlloc)
            .map(|f| f.line)
            .collect();
        assert_eq!(a1, vec![5], "only the un-waived Vec::new");
    }

    #[test]
    fn a1_builtin_designation_resolves_and_unresolved_is_a_finding() {
        // The built-in table designates Receiver::receive in the zigbee
        // rx file; a Vec::new inside it must fire without any marker.
        let src = "\
pub struct Receiver;
impl Receiver {
    pub fn receive(&self) { let v = Vec::new(); }
}
";
        let found = run_in("crates/freerider-zigbee/src/rx.rs", "freerider-zigbee", src);
        assert!(
            found
                .iter()
                .any(|f| f.rule == Rule::HotPathAlloc && f.line == 3),
            "{found:?}"
        );
        // Same file without the designated fn: the dangling designation
        // itself is the finding.
        let found = run_in(
            "crates/freerider-zigbee/src/rx.rs",
            "freerider-zigbee",
            "pub fn other() {}",
        );
        assert!(
            found
                .iter()
                .any(|f| f.rule == Rule::HotPathAlloc && f.message.contains("matches no function")),
            "{found:?}"
        );
    }

    #[test]
    fn o1_flags_relaxed_outside_sanctioned_files_and_seqcst_everywhere() {
        let src = "\
use std::sync::atomic::Ordering;
fn f(c: &std::sync::atomic::AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
    c.load(Ordering::SeqCst);
    c.store(0, Ordering::Release);
}
";
        let o1: Vec<u32> = run(src)
            .into_iter()
            .filter(|f| f.rule == Rule::AtomicOrdering)
            .map(|f| f.line)
            .collect();
        assert_eq!(o1, vec![3, 4], "Relaxed and SeqCst; Release is fine");
        // The same Relaxed in a sanctioned metrics file is quiet — but
        // SeqCst still needs a pragma even there.
        let found = run_in(
            "crates/freerider-serve/src/metrics.rs",
            "freerider-serve",
            src,
        );
        let o1: Vec<u32> = found
            .into_iter()
            .filter(|f| f.rule == Rule::AtomicOrdering)
            .map(|f| f.line)
            .collect();
        assert_eq!(o1, vec![4], "only the SeqCst");
    }

    #[test]
    fn t1_flags_thread_spawn_outside_runtime_crates() {
        let src = "\
fn f() {
    std::thread::spawn(|| {});
    std::thread::scope(|s| {});
    let b = std::thread::Builder::new();
}
";
        let t1 = run(src)
            .into_iter()
            .filter(|f| f.rule == Rule::ThreadContainment)
            .count();
        assert_eq!(t1, 3);
        // Sanctioned inside freerider-rt; and test code is exempt.
        let found = run_in("crates/freerider-rt/src/executor.rs", "freerider-rt", src);
        assert!(found.iter().all(|f| f.rule != Rule::ThreadContainment));
        let test_src = "#[cfg(test)]\nmod t { fn f() { std::thread::spawn(|| {}); } }";
        assert!(run(test_src)
            .iter()
            .all(|f| f.rule != Rule::ThreadContainment));
    }

    #[test]
    fn e1_cross_file_decode_and_encode_arms() {
        let registry = BTreeSet::new();
        let decl_src = "\
pub enum FrameType { SubmitJob = 1, Progress = 2, Orphan = 3 }
impl FrameType {
    pub fn from_byte(b: u8) -> Option<FrameType> {
        use FrameType::*;
        Some(match b { 1 => SubmitJob, 2 => Progress, _ => return None })
    }
}
";
        let use_src = "fn encode() -> u8 { FrameType::SubmitJob as u8 }\n\
                       fn stream() -> u8 { FrameType::Progress as u8 }\n";
        let decl_file = lib_file("crates/s/src/frame.rs", "s");
        let use_file = lib_file("crates/s/src/wire.rs", "s");
        let mut wire = WireScan::default();
        FileCtx::new(&decl_file, decl_src, &registry).scan_wire(&mut wire);
        FileCtx::new(&use_file, use_src, &registry).scan_wire(&mut wire);
        let mut out = Vec::new();
        wire.settle(&mut out);
        // Orphan: no decode arm AND no encode site → two findings, both
        // anchored at the variant's declaration line.
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|f| f.rule == Rule::WireExhaustive
            && f.path == "crates/s/src/frame.rs"
            && f.line == 1
            && f.message.contains("Orphan")));
        assert!(out.iter().any(|f| f.message.contains("no decode arm")));
        assert!(out.iter().any(|f| f.message.contains("never encoded")));
    }

    #[test]
    fn e1_missing_decoder_entirely_is_reported() {
        let registry = BTreeSet::new();
        let decl_file = lib_file("crates/s/src/frame.rs", "s");
        let mut wire = WireScan::default();
        FileCtx::new(&decl_file, "pub enum FrameType { A = 1 }", &registry).scan_wire(&mut wire);
        let mut out = Vec::new();
        wire.settle(&mut out);
        assert!(
            out.iter().any(|f| f.message.contains("has no decoder")),
            "{out:?}"
        );
    }

    #[test]
    fn fingerprints_are_line_move_invariant_and_occurrence_stable() {
        let mk = |line: u32, norm: &str| Finding {
            rule: Rule::Panic,
            path: "crates/x/src/lib.rs".to_string(),
            line,
            message: "m".to_string(),
            norm: norm.to_string(),
            fingerprint: 0,
        };
        // Same three findings, shifted down 40 lines: identical multiset
        // of fingerprints (two identical texts keep distinct occurrence
        // indices; the third differs by text).
        let mut a = vec![
            mk(5, "x.unwrap();"),
            mk(9, "x.unwrap();"),
            mk(12, "y.unwrap();"),
        ];
        let mut b = vec![
            mk(45, "x.unwrap();"),
            mk(49, "x.unwrap();"),
            mk(52, "y.unwrap();"),
        ];
        assign_fingerprints(&mut a);
        assign_fingerprints(&mut b);
        let fa: Vec<u64> = a.iter().map(|f| f.fingerprint).collect();
        let fb: Vec<u64> = b.iter().map(|f| f.fingerprint).collect();
        assert_eq!(fa, fb);
        assert_ne!(fa[0], fa[1], "identical lines get distinct occurrences");
        assert_ne!(fa[1], fa[2]);
        // Changing the rule or the path changes every fingerprint.
        assert_ne!(
            fingerprint("panic", "a.rs", "x.unwrap();", 0),
            fingerprint("wallclock", "a.rs", "x.unwrap();", 0)
        );
        assert_ne!(
            fingerprint("panic", "a.rs", "x.unwrap();", 0),
            fingerprint("panic", "b.rs", "x.unwrap();", 0)
        );
    }

    #[test]
    fn normalize_line_collapses_whitespace_only() {
        assert_eq!(normalize_line("  let  x\t=  1;  "), "let x = 1;");
        assert_eq!(normalize_line(""), "");
    }
}
