//! Report rendering: human text and the `freerider-lint/2` JSON document.
//!
//! The JSON mirrors the telemetry crate's reporting conventions: emitted
//! by [`freerider_telemetry::json::JsonWriter`], fully deterministic
//! (sorted findings, no timestamps), schema-tagged so CI can assert shape.

use crate::baseline::Assessment;
use crate::rules::{Analysis, Finding, Rule, ALL_RULES};
use freerider_telemetry::json::JsonWriter;
use std::fmt::Write as _;

/// Schema tag of the JSON report.
pub const SCHEMA: &str = "freerider-lint/2";

/// Renders the human-readable report: new findings, stale-baseline
/// warnings, and a one-line summary.
pub fn text(analysis: &Analysis, assessment: &Assessment) -> String {
    let mut out = String::new();
    for f in &assessment.new {
        // lint: allow(panic) — write! to a String cannot fail
        writeln!(out, "{}", f.render()).expect("write to String");
    }
    for e in &assessment.stale {
        writeln!(
            out,
            "warning: stale baseline: {} {} {:016x} no longer matches any finding \
             (run --update-baseline to tighten)",
            e.slug, e.path, e.fingerprint
        )
        .expect("write to String") // lint: allow(panic) — write! to a String cannot fail
    }
    writeln!(
        out,
        "freerider-lint: {} file(s), {} finding(s): {} new, {} baselined",
        analysis.files_scanned,
        analysis.findings.len(),
        assessment.new.len(),
        assessment.baselined,
    )
    .expect("write to String"); // lint: allow(panic) — write! to a String cannot fail
    out
}

/// Renders the machine-readable report.
pub fn json(root: &str, analysis: &Analysis, assessment: &Assessment) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema").string(SCHEMA);
    w.key("root").string(root);
    w.key("filesScanned").u64(analysis.files_scanned as u64);
    w.key("registry").begin_array();
    for name in &analysis.registry {
        w.string(name);
    }
    w.end_array();
    w.key("rules").begin_array();
    for rule in ALL_RULES {
        w.begin_object();
        w.key("id").string(rule.id());
        w.key("slug").string(rule.slug());
        w.key("description").string(rule.description());
        let all: Vec<&Finding> = analysis
            .findings
            .iter()
            .filter(|f| f.rule == rule)
            .collect();
        let new: Vec<&Finding> = assessment.new.iter().filter(|f| f.rule == rule).collect();
        w.key("findings").u64(all.len() as u64);
        w.key("new").begin_array();
        for f in new {
            w.begin_object();
            w.key("file").string(&f.path);
            w.key("line").u64(f.line as u64);
            w.key("message").string(&f.message);
            w.key("fingerprint")
                .string(&format!("{:016x}", f.fingerprint));
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.key("totalFindings").u64(analysis.findings.len() as u64);
    w.key("newFindings").u64(assessment.new.len() as u64);
    w.key("baselined").u64(assessment.baselined as u64);
    w.key("ok").bool(assessment.new.is_empty());
    w.end_object();
    w.finish()
}

/// Renders the `--list-rules` catalogue.
pub fn rule_catalogue() -> String {
    let mut out = String::new();
    for rule in ALL_RULES {
        if rule == Rule::Pragma {
            continue;
        }
        writeln!(
            out,
            "{:>2}  {:<17} {}",
            rule.id(),
            rule.slug(),
            rule.description()
        )
        .expect("write to String"); // lint: allow(panic) — write! to a String cannot fail
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline;

    fn sample() -> (Analysis, Assessment) {
        let mut findings = vec![Finding {
            rule: Rule::Panic,
            path: "crates/x/src/lib.rs".to_string(),
            line: 7,
            message: "boom".to_string(),
            norm: "x.unwrap();".to_string(),
            fingerprint: 0,
        }];
        crate::rules::assign_fingerprints(&mut findings);
        let assessment = baseline::assess(&findings, &baseline::Baseline::new());
        (
            Analysis {
                findings,
                files_scanned: 3,
                registry: ["FREERIDER_THREADS".to_string()].into(),
            },
            assessment,
        )
    }

    #[test]
    fn text_report_has_canonical_finding_lines() {
        let (analysis, assessment) = sample();
        let t = text(&analysis, &assessment);
        assert!(t.contains("crates/x/src/lib.rs:7: panic: boom"));
        assert!(t.contains("1 new, 0 baselined"));
    }

    #[test]
    fn json_report_is_valid_and_tagged() {
        let (analysis, assessment) = sample();
        let j = json("/ws", &analysis, &assessment);
        assert!(j.starts_with(&format!(r#"{{"schema":"{SCHEMA}""#)));
        assert!(j.contains(r#""slug":"panic""#));
        assert!(j.contains(r#""fingerprint":""#));
        assert!(j.contains(r#""newFindings":1"#));
        assert!(j.contains(r#""ok":false"#));
        // Balanced delimiters (JsonWriter::finish already asserts this,
        // but check the output survived formatting).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
