//! Workspace discovery: which `.rs` files to lint, and what each one *is*.
//!
//! The analyzer is lexical, so it cannot ask cargo about targets; instead
//! it classifies files by the same path conventions cargo itself uses
//! (`src/bin/`, `tests/`, `examples/`, `benches/`). Classification drives
//! rule scoping — e.g. the panic policy (P1) binds library code only.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// What kind of compilation target a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Part of a library target (`src/**` outside `src/bin/`).
    Lib,
    /// Part of a binary target (`src/bin/**` or `src/main.rs`).
    Bin,
    /// An integration test (`tests/**`).
    Test,
    /// An example (`examples/**`).
    Example,
    /// A bench target (`benches/**`).
    Bench,
}

impl FileKind {
    /// Stable lowercase name (used in reports and JSON).
    pub fn name(self) -> &'static str {
        match self {
            FileKind::Lib => "lib",
            FileKind::Bin => "bin",
            FileKind::Test => "test",
            FileKind::Example => "example",
            FileKind::Bench => "bench",
        }
    }
}

/// One source file scheduled for analysis.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (stable across hosts).
    pub rel: String,
    /// Absolute path on disk.
    pub abs: PathBuf,
    /// Owning package name (`crates/<name>/…`), or the root package.
    pub crate_name: String,
    /// Target classification by path convention.
    pub kind: FileKind,
    /// True for `src/lib.rs` of its package (crate-level attrs live here).
    pub is_lib_root: bool,
}

/// Name assigned to files of the workspace root package.
pub const ROOT_PACKAGE: &str = "freerider";

/// Walks a workspace root and returns every lintable `.rs` file, sorted by
/// relative path so reports and baselines are deterministic.
///
/// Scanned roots: `crates/*/…`, `src/…`, `tests/…`, `examples/…`,
/// `benches/…`. Directories named `target` or `fixtures` are skipped
/// everywhere (fixtures hold *intentional* violations for the lint's own
/// tests).
pub fn discover(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples", "benches"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk_dir(&dir, root, &mut files)?;
        }
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

fn walk_dir(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            walk_dir(&path, root, out)?;
        } else if name.ends_with(".rs") {
            if let Some(f) = classify(&path, root) {
                out.push(f);
            }
        }
    }
    Ok(())
}

/// Classifies one absolute path relative to the workspace root.
fn classify(abs: &Path, root: &Path) -> Option<SourceFile> {
    let rel_path = abs.strip_prefix(root).ok()?;
    let parts: Vec<&str> = rel_path.iter().filter_map(|p| p.to_str()).collect();
    let rel = parts.join("/");

    // Split off the package prefix: `crates/<name>/…` or the root package.
    let (crate_name, in_pkg) = match parts.as_slice() {
        ["crates", name, rest @ ..] => (name.to_string(), rest),
        rest => (ROOT_PACKAGE.to_string(), rest),
    };

    let kind = match in_pkg {
        ["src", "bin", ..] | ["src", "main.rs"] => FileKind::Bin,
        ["src", ..] => FileKind::Lib,
        ["tests", ..] => FileKind::Test,
        ["examples", ..] => FileKind::Example,
        ["benches", ..] => FileKind::Bench,
        _ => return None,
    };

    Some(SourceFile {
        is_lib_root: in_pkg == ["src", "lib.rs"],
        rel,
        abs: abs.to_path_buf(),
        crate_name,
        kind,
    })
}

/// Finds the workspace root at or above `start`: the nearest ancestor whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kind_of(rel: &str) -> Option<(String, FileKind, bool)> {
        let root = Path::new("/ws");
        classify(&root.join(rel), root).map(|f| (f.crate_name, f.kind, f.is_lib_root))
    }

    #[test]
    fn classification_follows_cargo_conventions() {
        assert_eq!(
            kind_of("crates/freerider-dsp/src/fft.rs"),
            Some(("freerider-dsp".into(), FileKind::Lib, false))
        );
        assert_eq!(
            kind_of("crates/freerider-dsp/src/lib.rs"),
            Some(("freerider-dsp".into(), FileKind::Lib, true))
        );
        assert_eq!(
            kind_of("crates/freerider-bench/src/bin/repro.rs"),
            Some(("freerider-bench".into(), FileKind::Bin, false))
        );
        assert_eq!(
            kind_of("src/bin/freerider.rs"),
            Some((ROOT_PACKAGE.into(), FileKind::Bin, false))
        );
        assert_eq!(
            kind_of("src/lib.rs"),
            Some((ROOT_PACKAGE.into(), FileKind::Lib, true))
        );
        assert_eq!(
            kind_of("tests/end_to_end.rs"),
            Some((ROOT_PACKAGE.into(), FileKind::Test, false))
        );
        assert_eq!(
            kind_of("examples/signal_inspector.rs"),
            Some((ROOT_PACKAGE.into(), FileKind::Example, false))
        );
        assert_eq!(
            kind_of("crates/x/tests/t.rs"),
            Some(("x".into(), FileKind::Test, false))
        );
        assert_eq!(kind_of("crates/x/build.rs"), None);
    }
}
