//! Positive fixture for D2: hashed collection in non-test code.
#![forbid(unsafe_code)]
use std::collections::HashMap;

pub fn table() -> HashMap<u32, u32> {
    HashMap::new()
}
