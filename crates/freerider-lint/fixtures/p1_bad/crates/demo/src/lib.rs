//! Positive fixture for P1: panicking calls in library code.
#![forbid(unsafe_code)]
pub fn take(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn must(x: Result<u32, String>) -> u32 {
    x.expect("must hold")
}

pub fn never() -> ! {
    panic!("library code must not do this")
}
