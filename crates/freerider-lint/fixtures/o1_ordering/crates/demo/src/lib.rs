//! Positive fixture for O1: atomic orderings outside sanctioned sites.
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};

/// Not a telemetry counter module: Relaxed needs a pragma here.
pub fn bump(hits: &AtomicU64) {
    hits.fetch_add(1, Ordering::Relaxed);
}

/// SeqCst needs a justification pragma everywhere.
pub fn read_strong(hits: &AtomicU64) -> u64 {
    hits.load(Ordering::SeqCst)
}

/// Acquire/Release handshakes are the sanctioned default — no finding.
pub fn publish(flag: &AtomicU64) -> u64 {
    flag.store(1, Ordering::Release);
    flag.load(Ordering::Acquire)
}
