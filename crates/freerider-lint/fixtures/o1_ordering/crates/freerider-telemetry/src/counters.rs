//! Sanctioned telemetry counter site: Relaxed is the contract here.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic frame counter; readers tolerate staleness by design.
pub fn frame(frames: &AtomicU64) {
    frames.fetch_add(1, Ordering::Relaxed);
}
