//! Negative fixture: near-misses for every rule, all of them sound.
#![forbid(unsafe_code)]

use std::collections::BTreeMap;

/// Deterministic collection: D2 is satisfied without any pragma.
pub fn sizes() -> BTreeMap<&'static str, usize> {
    let mut m = BTreeMap::new();
    m.insert("demo", 1);
    m
}

/// A registered knob: D3 is satisfied via the fixture registry.
pub fn knob() -> Option<String> {
    std::env::var("FREERIDER_DEMO").ok()
}

/// A justified panic: P1 waived by a pragma with a reason.
pub fn first() -> usize {
    // lint: allow(panic) — sizes() always contains the "demo" entry
    *sizes().values().next().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn test_code_is_exempt_from_d1_d2_p1() {
        let _ = Instant::now();
        let mut m = HashMap::new();
        m.insert(1u32, 2u32);
        assert_eq!(m.get(&1).copied().unwrap(), 2);
        assert_eq!(first(), 1);
    }
}
