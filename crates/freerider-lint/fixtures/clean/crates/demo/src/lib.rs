//! Negative fixture: near-misses for every rule, all of them sound.
#![forbid(unsafe_code)]

use std::collections::BTreeMap;

/// Deterministic collection: D2 is satisfied without any pragma.
pub fn sizes() -> BTreeMap<&'static str, usize> {
    let mut m = BTreeMap::new();
    m.insert("demo", 1);
    m
}

/// A registered knob: D3 is satisfied via the fixture registry.
pub fn knob() -> Option<String> {
    std::env::var("FREERIDER_DEMO").ok()
}

/// A justified panic: P1 waived by a pragma with a reason.
pub fn first() -> usize {
    // lint: allow(panic) — sizes() always contains the "demo" entry
    *sizes().values().next().unwrap()
}

/// A designated hot path that stays allocation-free: A1 is satisfied.
// lint: hot-path
pub fn demod(input: &[u8], out: &mut [u8]) -> usize {
    let mut n = 0;
    for (o, b) in out.iter_mut().zip(input) {
        *o = b ^ 0x55;
        n += 1;
    }
    n
}

/// Allocation outside any designated hot path: A1 stays quiet.
pub fn scratch() -> Vec<u8> {
    Vec::with_capacity(64)
}

/// Acquire/Release handshake: the sanctioned O1 default.
pub fn publish(flag: &std::sync::atomic::AtomicU64) -> u64 {
    use std::sync::atomic::Ordering;
    flag.store(1, Ordering::Release);
    flag.load(Ordering::Acquire)
}

/// A wire enum whose every variant both encodes and decodes: E1 clean.
pub enum FrameType {
    Hello = 0x01,
    Data = 0x02,
}

impl FrameType {
    /// Decode arm for every variant.
    pub fn from_byte(b: u8) -> Option<FrameType> {
        use FrameType::*;
        Some(match b {
            0x01 => Hello,
            0x02 => Data,
            _ => return None,
        })
    }
}

/// Encode arm for every variant.
pub fn encode(t: &FrameType) -> u8 {
    match t {
        FrameType::Hello => 0x01,
        FrameType::Data => 0x02,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn test_code_is_exempt_from_d1_d2_p1() {
        let _ = Instant::now();
        let mut m = HashMap::new();
        m.insert(1u32, 2u32);
        assert_eq!(m.get(&1).copied().unwrap(), 2);
        assert_eq!(first(), 1);
    }
}
