//! Fixture env registry: the one knob the clean workspace reads.
pub const REGISTRY: &[&str] = &["FREERIDER_DEMO"];
