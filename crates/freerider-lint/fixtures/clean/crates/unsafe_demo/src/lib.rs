//! Negative fixture for U1: documented unsafe (so no forbid required).
/// Reads one byte from a raw pointer.
pub fn read(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` is valid for reads (see docs)
    unsafe { *p }
}
