//! T1 negative: `freerider-rt` is a sanctioned thread-spawning crate.

pub fn start() {
    std::thread::spawn(|| {});
}
