//! Positive fixture for D3: unregistered FREERIDER_* knob.
#![forbid(unsafe_code)]
pub fn knob() -> Option<String> {
    std::env::var("FREERIDER_SECRET_KNOB").ok()
}
