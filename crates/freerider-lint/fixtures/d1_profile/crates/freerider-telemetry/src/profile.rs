//! Negative half of the d1_profile fixture: this path matches the
//! `WALLCLOCK_EXEMPT_FILES` entry for the stage profiler, so its clock
//! reads must produce no findings.
use std::time::Instant;

pub fn scope_start() -> Instant {
    Instant::now()
}

pub fn elapsed_ns(start: Instant) -> u64 {
    start.elapsed().as_nanos() as u64
}
