//! Positive half of the d1_profile fixture: the same clock reads outside
//! the sanctioned profiler path must still be flagged.
#![forbid(unsafe_code)]
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}
