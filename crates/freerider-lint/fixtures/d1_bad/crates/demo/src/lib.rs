//! Positive fixture for D1: wall-clock in deterministic library code.
#![forbid(unsafe_code)]
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}
