//! Positive fixture for A1: heap allocation inside a designated hot path.
#![forbid(unsafe_code)]

// lint: hot-path
pub fn demod(input: &[u8], out: &mut Vec<u8>) -> usize {
    let staged: Vec<u8> = input.iter().map(|b| b ^ 0x55).collect();
    let copy = staged.to_vec();
    out.extend_from_slice(&copy);
    format!("{}", copy.len()).len()
}

/// Allocation outside a designated hot path is no finding.
pub fn setup() -> Vec<u8> {
    Vec::with_capacity(64)
}
