//! Positive fixture for T1: thread spawning outside the runtime crates.
#![forbid(unsafe_code)]

pub fn fan_out() {
    std::thread::spawn(|| {});
}

pub fn scoped() {
    std::thread::scope(|_s| {});
}

pub fn tuned() {
    let _ = std::thread::Builder::new();
}
