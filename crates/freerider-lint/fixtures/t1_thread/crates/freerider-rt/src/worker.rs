//! Sanctioned: `freerider-rt` owns the worker pool — no finding here.

pub fn start() {
    std::thread::spawn(|| {});
}
