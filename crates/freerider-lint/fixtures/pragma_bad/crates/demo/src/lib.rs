//! Positive fixture for pragma hygiene: reason missing, rule unknown.
#![forbid(unsafe_code)]
// lint: allow(panic)
pub fn take(x: Option<u32>) -> u32 {
    x.unwrap()
}

// lint: allow(wibble) — no such rule
pub fn fine() -> u32 {
    7
}
