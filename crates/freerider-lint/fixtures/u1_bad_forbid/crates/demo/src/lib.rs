//! Positive fixture for U1 (crate half): no unsafe anywhere, but the
//! crate root does not carry #![forbid(unsafe_code)].
pub fn fine() -> u32 {
    7
}
