//! Positive fixture for E1: `FrameType` variants missing wire arms.
//!
//! `Orphan` is encoded but never decoded; `Ghost` is decoded but never
//! encoded. `Hello` and `Data` round-trip and are clean.
#![forbid(unsafe_code)]

pub enum FrameType {
    Hello = 0x01,
    Data = 0x02,
    Orphan = 0x03,
    Ghost = 0x04,
}

impl FrameType {
    pub fn from_byte(b: u8) -> Option<FrameType> {
        use FrameType::*;
        Some(match b {
            0x01 => Hello,
            0x02 => Data,
            0x04 => Ghost,
            _ => return None,
        })
    }
}

pub fn encode(t: &FrameType) -> u8 {
    match t {
        FrameType::Hello => 0x01,
        FrameType::Data => 0x02,
        FrameType::Orphan => 0x03,
        _ => 0,
    }
}
