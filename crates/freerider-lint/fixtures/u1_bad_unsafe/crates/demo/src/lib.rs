//! Positive fixture for U1 (site half): unsafe without a SAFETY comment.
pub fn read(p: *const u8) -> u8 {
    unsafe { *p }
}
