//! End-to-end fixture runs: one positive and one negative per rule.
//!
//! Each fixture under `fixtures/` is a miniature workspace; the tests run
//! the real `freerider-lint` binary against it and assert on exit status
//! and report text — the same interface `scripts/verify.sh` uses.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn run_lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_freerider-lint"))
        .args(args)
        .output()
        .expect("spawn freerider-lint")
}

fn lint_fixture(name: &str) -> (bool, String) {
    let root = fixture(name);
    let out = run_lint(&["--workspace", "--root", root.to_str().expect("utf-8 path")]);
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

/// Asserts the fixture fails with findings of exactly `slug` (and a
/// finding count of `count`).
fn assert_positive(name: &str, slug: &str, count: usize) {
    let (ok, text) = lint_fixture(name);
    assert!(!ok, "{name} must exit non-zero:\n{text}");
    let hits = text
        .lines()
        .filter(|l| l.contains(&format!(": {slug}: ")))
        .count();
    assert_eq!(
        hits, count,
        "{name} expected {count} `{slug}` finding(s):\n{text}"
    );
    let other = text
        .lines()
        .filter(|l| l.contains("crates/demo") || l.contains("crates/unsafe_demo"))
        .filter(|l| !l.contains(&format!(": {slug}: ")))
        .count();
    assert_eq!(other, 0, "{name} must only trip `{slug}`:\n{text}");
}

#[test]
fn d1_wallclock_positive() {
    assert_positive("d1_bad", "wallclock", 3);
}

#[test]
fn d1_profile_module_is_a_sanctioned_wallclock_site() {
    // Mixed fixture: identical clock reads in the exempt profiler path
    // and in an ordinary crate. Only the ordinary crate may be flagged.
    let (ok, text) = lint_fixture("d1_profile");
    assert!(
        !ok,
        "d1_profile must exit non-zero (demo half trips D1):\n{text}"
    );
    let demo_hits = text
        .lines()
        .filter(|l| l.contains("crates/demo") && l.contains(": wallclock: "))
        .count();
    assert_eq!(
        demo_hits, 3,
        "demo half must trip wallclock 3 times:\n{text}"
    );
    let exempt_hits = text
        .lines()
        .filter(|l| l.contains("freerider-telemetry/src/profile.rs"))
        .count();
    assert_eq!(
        exempt_hits, 0,
        "the profiler module is exempt from D1 — no findings allowed:\n{text}"
    );
}

#[test]
fn d2_hash_collections_positive() {
    assert_positive("d2_bad", "hash-collections", 3);
}

#[test]
fn d3_env_registry_positive() {
    assert_positive("d3_bad", "env-registry", 1);
}

#[test]
fn p1_panic_positive() {
    assert_positive("p1_bad", "panic", 3);
}

#[test]
fn u1_unsafe_site_positive() {
    assert_positive("u1_bad_unsafe", "unsafe-audit", 1);
}

#[test]
fn u1_missing_forbid_positive() {
    let (ok, text) = lint_fixture("u1_bad_forbid");
    assert!(!ok, "u1_bad_forbid must exit non-zero:\n{text}");
    assert!(
        text.contains("lacks #![forbid(unsafe_code)]"),
        "expected the crate-level forbid finding:\n{text}"
    );
}

#[test]
fn a1_hot_path_alloc_positive() {
    assert_positive("a1_alloc", "hot-path-alloc", 3);
}

#[test]
fn o1_atomic_ordering_positive_with_sanctioned_counterpart() {
    assert_positive("o1_ordering", "atomic-ordering", 2);
    let (_, text) = lint_fixture("o1_ordering");
    assert_eq!(
        text.lines()
            .filter(|l| l.contains("freerider-telemetry"))
            .count(),
        0,
        "Relaxed in the sanctioned telemetry counter site must be quiet:\n{text}"
    );
}

#[test]
fn t1_thread_containment_positive_with_sanctioned_counterpart() {
    assert_positive("t1_thread", "thread-containment", 3);
    let (_, text) = lint_fixture("t1_thread");
    assert_eq!(
        text.lines()
            .filter(|l| l.contains("crates/freerider-rt/src"))
            .count(),
        0,
        "spawn inside freerider-rt is sanctioned:\n{text}"
    );
}

#[test]
fn e1_wire_exhaustive_positive() {
    // Orphan lacks a decode arm, Ghost is never encoded: two findings.
    assert_positive("e1_frames", "wire-exhaustive", 2);
    let (_, text) = lint_fixture("e1_frames");
    assert!(
        text.contains("Orphan") && text.contains("no decode arm"),
        "{text}"
    );
    assert!(
        text.contains("Ghost") && text.contains("never encoded"),
        "{text}"
    );
}

#[test]
fn selftest_subcommand_passes() {
    let out = run_lint(&["--selftest"]);
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(out.status.success(), "{text}");
    for slug in [
        "hot-path-alloc",
        "atomic-ordering",
        "thread-containment",
        "wire-exhaustive",
    ] {
        assert!(text.contains(slug), "missing {slug} in:\n{text}");
    }
}

#[test]
fn pragma_hygiene_positive() {
    let (ok, text) = lint_fixture("pragma_bad");
    assert!(!ok, "pragma_bad must exit non-zero:\n{text}");
    // The reason-less allow(panic) is flagged and does NOT waive the
    // unwrap it precedes; the unknown-rule pragma is flagged too.
    assert_eq!(
        text.lines().filter(|l| l.contains(": pragma: ")).count(),
        2,
        "{text}"
    );
    assert_eq!(
        text.lines().filter(|l| l.contains(": panic: ")).count(),
        1,
        "{text}"
    );
}

#[test]
fn clean_fixture_passes_every_rule() {
    let (ok, text) = lint_fixture("clean");
    assert!(ok, "clean fixture must exit zero:\n{text}");
    assert!(text.contains("0 new"), "{text}");
}

#[test]
fn baseline_absorbs_existing_debt_but_not_new() {
    let dir = std::env::temp_dir().join("freerider_lint_fixture_baseline");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let baseline = dir.join("p1.baseline");
    let _ = std::fs::remove_file(&baseline);
    let root = fixture("p1_bad");
    let root_s = root.to_str().expect("utf-8 path");
    let base_s = baseline.to_str().expect("utf-8 path");

    // Accept the three known panics of p1_bad…
    let out = run_lint(&[
        "--workspace",
        "--root",
        root_s,
        "--baseline",
        base_s,
        "--update-baseline",
    ]);
    assert!(out.status.success(), "--update-baseline exits zero");
    let out = run_lint(&["--workspace", "--root", root_s, "--baseline", base_s]);
    assert!(
        out.status.success(),
        "baselined debt must pass: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    // …but dropping one accepted fingerprint re-exposes that finding.
    let text = std::fs::read_to_string(&baseline).expect("read");
    let pruned: String = text
        .lines()
        .filter(|l| !l.contains("x.unwrap()"))
        .map(|l| format!("{l}\n"))
        .collect();
    assert_ne!(text, pruned, "one entry must have been pruned");
    std::fs::write(&baseline, pruned).expect("write");
    let out = run_lint(&["--workspace", "--root", root_s, "--baseline", base_s]);
    assert!(!out.status.success(), "un-baselined finding must fail");
    let report = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(report.contains("1 new, 2 baselined"), "{report}");
}

#[test]
fn v1_count_baseline_is_a_clear_error() {
    let dir = std::env::temp_dir().join("freerider_lint_fixture_v1err");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let baseline = dir.join("p1.baseline");
    std::fs::write(&baseline, "panic crates/demo/src/lib.rs 3\n").expect("write");
    let root = fixture("p1_bad");
    let out = run_lint(&[
        "--workspace",
        "--root",
        root.to_str().expect("utf-8 path"),
        "--baseline",
        baseline.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "v1 baseline is an I/O-class error"
    );
    let err = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(err.contains("--migrate-baseline"), "{err}");
}

#[test]
fn migrate_baseline_converts_v1_counts_to_fingerprints() {
    let dir = std::env::temp_dir().join("freerider_lint_fixture_migrate");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let baseline = dir.join("p1.baseline");
    // v1 accepts only two of the three panics: the migration carries the
    // first two findings and the third stays live.
    std::fs::write(&baseline, "panic crates/demo/src/lib.rs 2\n").expect("write");
    let root = fixture("p1_bad");
    let root_s = root.to_str().expect("utf-8 path");
    let base_s = baseline.to_str().expect("utf-8 path");
    let out = run_lint(&[
        "--workspace",
        "--root",
        root_s,
        "--baseline",
        base_s,
        "--migrate-baseline",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let written = std::fs::read_to_string(&baseline).expect("read");
    assert!(written.contains("version 2"), "{written}");
    assert_eq!(
        written.lines().filter(|l| l.starts_with("panic ")).count(),
        2,
        "{written}"
    );
    let out = run_lint(&["--workspace", "--root", root_s, "--baseline", base_s]);
    assert!(
        !out.status.success(),
        "the un-accepted third panic stays live"
    );
    let report = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(report.contains("1 new, 2 baselined"), "{report}");
}

#[test]
fn update_baseline_round_trips() {
    let dir = std::env::temp_dir().join("freerider_lint_fixture_update");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let baseline = dir.join("lint.baseline");
    let _ = std::fs::remove_file(&baseline);

    let root = fixture("d1_bad");
    let root_s = root.to_str().expect("utf-8 path");
    let base_s = baseline.to_str().expect("utf-8 path");
    let out = run_lint(&[
        "--workspace",
        "--root",
        root_s,
        "--baseline",
        base_s,
        "--update-baseline",
    ]);
    assert!(out.status.success(), "--update-baseline exits zero");
    let written = std::fs::read_to_string(&baseline).expect("baseline written");
    assert!(written.contains("version 2"), "{written}");
    assert_eq!(
        written
            .lines()
            .filter(|l| l.starts_with("wallclock ") && l.contains("crates/demo/src/lib.rs"))
            .count(),
        3,
        "one fingerprint per finding:\n{written}"
    );

    // With the generated baseline the same fixture now passes.
    let out = run_lint(&["--workspace", "--root", root_s, "--baseline", base_s]);
    assert!(
        out.status.success(),
        "generated baseline must absorb the debt"
    );
}

#[test]
fn baseline_survives_line_moves_without_a_diff() {
    // Copy the d1_bad fixture, baseline it, then push every finding down
    // two lines by inserting comments at the top of the file: the run
    // still passes and a re-saved baseline is byte-identical.
    let dir = std::env::temp_dir().join("freerider_lint_fixture_linemove");
    let _ = std::fs::remove_dir_all(&dir);
    let src_dir = dir.join("crates/demo/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    let lib = src_dir.join("lib.rs");
    let original =
        std::fs::read_to_string(fixture("d1_bad").join("crates/demo/src/lib.rs")).expect("read");
    std::fs::write(&lib, &original).expect("write");

    let baseline = dir.join("lint.baseline");
    let root_s = dir.to_str().expect("utf-8 path");
    let base_s = baseline.to_str().expect("utf-8 path");
    let out = run_lint(&[
        "--workspace",
        "--root",
        root_s,
        "--baseline",
        base_s,
        "--update-baseline",
    ]);
    assert!(out.status.success());
    let before = std::fs::read_to_string(&baseline).expect("read");

    std::fs::write(&lib, format!("// moved down\n// by two lines\n{original}")).expect("write");
    let out = run_lint(&["--workspace", "--root", root_s, "--baseline", base_s]);
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        out.status.success(),
        "moved findings stay baselined:\n{text}"
    );
    assert!(!text.contains("stale"), "no stale entries either:\n{text}");

    let out = run_lint(&[
        "--workspace",
        "--root",
        root_s,
        "--baseline",
        base_s,
        "--update-baseline",
    ]);
    assert!(out.status.success());
    let after = std::fs::read_to_string(&baseline).expect("read");
    assert_eq!(before, after, "line moves must not dirty the baseline");
}

#[test]
fn json_report_written_for_fixture() {
    let dir = std::env::temp_dir().join("freerider_lint_fixture_json");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let json_path = dir.join("report.json");
    let root = fixture("d2_bad");
    let out = run_lint(&[
        "--workspace",
        "--root",
        root.to_str().expect("utf-8 path"),
        "--json",
        json_path.to_str().expect("utf-8 path"),
    ]);
    assert!(!out.status.success());
    let doc = std::fs::read_to_string(&json_path).expect("json written");
    assert!(doc.starts_with(r#"{"schema":"freerider-lint/2""#), "{doc}");
    assert!(doc.contains(r#""slug":"hash-collections""#), "{doc}");
    assert!(doc.contains(r#""slug":"hot-path-alloc""#), "{doc}");
    assert!(doc.contains(r#""slug":"wire-exhaustive""#), "{doc}");
    assert!(doc.contains(r#""fingerprint":""#), "{doc}");
    assert!(doc.contains(r#""ok":false"#), "{doc}");
}

#[test]
fn list_rules_prints_catalogue() {
    let out = run_lint(&["--list-rules"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    for id in ["D1", "D2", "D3", "P1", "U1", "A1", "O1", "T1", "E1"] {
        assert!(text.contains(id), "missing {id} in:\n{text}");
    }
}

#[test]
fn usage_error_exits_2() {
    let out = run_lint(&[]);
    assert_eq!(out.status.code(), Some(2));
}
