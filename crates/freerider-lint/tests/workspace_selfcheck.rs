//! Self-check: the analyzer runs over the *real* workspace and must find
//! zero above-baseline violations — the committed contract that keeps the
//! determinism invariants machine-enforced from this PR forward.

use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/freerider-lint has a workspace two levels up")
}

#[test]
fn real_workspace_has_zero_new_findings() {
    let root = workspace_root();
    let baseline = freerider_lint::default_baseline_path(root);
    let outcome = freerider_lint::run(root, &baseline).expect("analyze workspace");
    let rendered: Vec<String> = outcome.assessment.new.iter().map(|f| f.render()).collect();
    assert!(
        outcome.ok(),
        "workspace has {} above-baseline finding(s):\n{}",
        rendered.len(),
        rendered.join("\n")
    );
    assert!(
        outcome.analysis.files_scanned > 100,
        "suspiciously few files scanned: {}",
        outcome.analysis.files_scanned
    );
}

#[test]
fn rx_crates_carry_zero_panic_debt() {
    // The hot RX paths must be panic-clean *without* baseline absorption:
    // an empty baseline for P1 in these crates is an acceptance criterion.
    let root = workspace_root();
    let baseline = freerider_lint::default_baseline_path(root);
    let base = freerider_lint::baseline::load(&baseline).expect("load baseline");
    for krate in [
        "freerider-wifi",
        "freerider-zigbee",
        "freerider-ble",
        "freerider-coding",
    ] {
        let debt: Vec<_> = base
            .entries
            .iter()
            .filter(|e| e.slug == "panic" && e.path.starts_with(&format!("crates/{krate}/")))
            .collect();
        assert!(
            debt.is_empty(),
            "{krate} must have an empty P1 baseline: {debt:?}"
        );
    }
}

#[test]
fn determinism_rules_have_completely_empty_baselines() {
    let root = workspace_root();
    let baseline = freerider_lint::default_baseline_path(root);
    let base = freerider_lint::baseline::load(&baseline).expect("load baseline");
    for slug in [
        "wallclock",
        "hash-collections",
        "env-registry",
        "unsafe-audit",
        "hot-path-alloc",
        "atomic-ordering",
        "thread-containment",
        "wire-exhaustive",
    ] {
        let debt: Vec<_> = base.entries.iter().filter(|e| e.slug == slug).collect();
        assert!(
            debt.is_empty(),
            "rule {slug} must carry no baseline debt: {debt:?}"
        );
    }
}

#[test]
fn registry_covers_all_documented_knobs() {
    let root = workspace_root();
    let baseline = freerider_lint::default_baseline_path(root);
    let outcome = freerider_lint::run(root, &baseline).expect("analyze workspace");
    for knob in [
        "FREERIDER_THREADS",
        "FREERIDER_LOG",
        "FREERIDER_TRACE",
        "FREERIDER_BENCH_THRESHOLD",
    ] {
        assert!(
            outcome.analysis.registry.contains(knob),
            "registry missing {knob}: {:?}",
            outcome.analysis.registry
        );
    }
}
