//! The eight 802.11g OFDM rates.

use freerider_coding::convolutional::CodeRate;

/// Modulation and coding scheme for 20 MHz 802.11a/g OFDM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mcs {
    /// BPSK, rate 1/2 — 6 Mbps. The rate FreeRider's evaluation runs on.
    Bpsk12,
    /// BPSK, rate 3/4 — 9 Mbps.
    Bpsk34,
    /// QPSK, rate 1/2 — 12 Mbps.
    Qpsk12,
    /// QPSK, rate 3/4 — 18 Mbps.
    Qpsk34,
    /// 16-QAM, rate 1/2 — 24 Mbps.
    Qam16Half,
    /// 16-QAM, rate 3/4 — 36 Mbps.
    Qam16ThreeQuarters,
    /// 64-QAM, rate 2/3 — 48 Mbps.
    Qam64TwoThirds,
    /// 64-QAM, rate 3/4 — 54 Mbps.
    Qam64ThreeQuarters,
}

/// Constellation used by an [`Mcs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Modulation {
    /// 1 bit per subcarrier.
    Bpsk,
    /// 2 bits per subcarrier.
    Qpsk,
    /// 4 bits per subcarrier.
    Qam16,
    /// 6 bits per subcarrier.
    Qam64,
}

impl Modulation {
    /// Coded bits per subcarrier (N_BPSC).
    pub fn bits_per_subcarrier(self) -> usize {
        match self {
            Modulation::Bpsk => 1,
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
        }
    }
}

impl Mcs {
    /// All rates, slowest first.
    pub const ALL: [Mcs; 8] = [
        Mcs::Bpsk12,
        Mcs::Bpsk34,
        Mcs::Qpsk12,
        Mcs::Qpsk34,
        Mcs::Qam16Half,
        Mcs::Qam16ThreeQuarters,
        Mcs::Qam64TwoThirds,
        Mcs::Qam64ThreeQuarters,
    ];

    /// Nominal PHY bit rate in Mbps.
    pub fn mbps(self) -> f64 {
        match self {
            Mcs::Bpsk12 => 6.0,
            Mcs::Bpsk34 => 9.0,
            Mcs::Qpsk12 => 12.0,
            Mcs::Qpsk34 => 18.0,
            Mcs::Qam16Half => 24.0,
            Mcs::Qam16ThreeQuarters => 36.0,
            Mcs::Qam64TwoThirds => 48.0,
            Mcs::Qam64ThreeQuarters => 54.0,
        }
    }

    /// Constellation.
    pub fn modulation(self) -> Modulation {
        match self {
            Mcs::Bpsk12 | Mcs::Bpsk34 => Modulation::Bpsk,
            Mcs::Qpsk12 | Mcs::Qpsk34 => Modulation::Qpsk,
            Mcs::Qam16Half | Mcs::Qam16ThreeQuarters => Modulation::Qam16,
            Mcs::Qam64TwoThirds | Mcs::Qam64ThreeQuarters => Modulation::Qam64,
        }
    }

    /// Convolutional code rate.
    pub fn code_rate(self) -> CodeRate {
        match self {
            Mcs::Bpsk12 | Mcs::Qpsk12 | Mcs::Qam16Half => CodeRate::Half,
            Mcs::Qam64TwoThirds => CodeRate::TwoThirds,
            _ => CodeRate::ThreeQuarters,
        }
    }

    /// Coded bits per OFDM symbol (N_CBPS).
    pub fn coded_bits_per_symbol(self) -> usize {
        48 * self.modulation().bits_per_subcarrier()
    }

    /// Data bits per OFDM symbol (N_DBPS).
    pub fn data_bits_per_symbol(self) -> usize {
        let (num, den) = self.code_rate().as_fraction();
        self.coded_bits_per_symbol() * num / den
    }

    /// The 4-bit RATE field of the SIGNAL symbol (R1..R4, R1 first).
    pub fn signal_rate_bits(self) -> [u8; 4] {
        match self {
            Mcs::Bpsk12 => [1, 1, 0, 1],
            Mcs::Bpsk34 => [1, 1, 1, 1],
            Mcs::Qpsk12 => [0, 1, 0, 1],
            Mcs::Qpsk34 => [0, 1, 1, 1],
            Mcs::Qam16Half => [1, 0, 0, 1],
            Mcs::Qam16ThreeQuarters => [1, 0, 1, 1],
            Mcs::Qam64TwoThirds => [0, 0, 0, 1],
            Mcs::Qam64ThreeQuarters => [0, 0, 1, 1],
        }
    }

    /// Inverse of [`Mcs::signal_rate_bits`].
    pub fn from_signal_rate_bits(bits: [u8; 4]) -> Option<Mcs> {
        Mcs::ALL.into_iter().find(|m| m.signal_rate_bits() == bits)
    }

    /// Number of DATA OFDM symbols needed for a PSDU of `len` bytes
    /// (16 SERVICE bits + 8·len data bits + 6 tail bits, padded up).
    pub fn data_symbols_for(self, len: usize) -> usize {
        (16 + 8 * len + 6).div_ceil(self.data_bits_per_symbol())
    }

    /// Airtime in microseconds for a PSDU of `len` bytes, including the
    /// 16 µs preamble and 4 µs SIGNAL.
    pub fn airtime_us(self, len: usize) -> f64 {
        20.0 + 4.0 * self.data_symbols_for(len) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_values_match_standard() {
        // N_DBPS per IEEE 802.11-2012 Table 18-4.
        let expect = [
            (Mcs::Bpsk12, 48, 24),
            (Mcs::Bpsk34, 48, 36),
            (Mcs::Qpsk12, 96, 48),
            (Mcs::Qpsk34, 96, 72),
            (Mcs::Qam16Half, 192, 96),
            (Mcs::Qam16ThreeQuarters, 192, 144),
            (Mcs::Qam64TwoThirds, 288, 192),
            (Mcs::Qam64ThreeQuarters, 288, 216),
        ];
        for (mcs, cbps, dbps) in expect {
            assert_eq!(mcs.coded_bits_per_symbol(), cbps, "{mcs:?}");
            assert_eq!(mcs.data_bits_per_symbol(), dbps, "{mcs:?}");
        }
    }

    #[test]
    fn rate_matches_dbps() {
        for mcs in Mcs::ALL {
            // N_DBPS per 4 µs symbol ⇒ Mbps.
            let mbps = mcs.data_bits_per_symbol() as f64 / 4.0;
            assert!((mbps - mcs.mbps()).abs() < 1e-9, "{mcs:?}");
        }
    }

    #[test]
    fn signal_bits_round_trip() {
        for mcs in Mcs::ALL {
            assert_eq!(
                Mcs::from_signal_rate_bits(mcs.signal_rate_bits()),
                Some(mcs)
            );
        }
        assert_eq!(Mcs::from_signal_rate_bits([0, 0, 0, 0]), None);
    }

    #[test]
    fn symbol_count_and_airtime() {
        // 100-byte PSDU at 6 Mbps: (16+800+6)/24 = 34.25 → 35 symbols.
        assert_eq!(Mcs::Bpsk12.data_symbols_for(100), 35);
        assert!((Mcs::Bpsk12.airtime_us(100) - 160.0).abs() < 1e-9);
        // Empty PSDU still needs one symbol.
        assert_eq!(Mcs::Bpsk12.data_symbols_for(0), 1);
    }
}
