//! The 802.11 OFDM PLCP preamble: short and long training fields.
//!
//! * STF — 10 repetitions of a 0.8 µs (16-sample) short symbol, used for
//!   packet detection, AGC and coarse frequency offset.
//! * LTF — a 1.6 µs guard followed by two 3.2 µs long symbols, used for
//!   fine timing, fine CFO and channel estimation.

use crate::ofdm::carrier_to_bin;
use crate::{CP_LEN, FFT_SIZE};
use freerider_dsp::{fft, Complex};

/// Nonzero STF subcarriers and the sign of their `(1+j)` value
/// (IEEE 802.11-2012 Eq. 18-6).
const STF_CARRIERS: [(i32, f64); 12] = [
    (-24, 1.0),
    (-20, -1.0),
    (-16, 1.0),
    (-12, -1.0),
    (-8, -1.0),
    (-4, 1.0),
    (4, -1.0),
    (8, -1.0),
    (12, 1.0),
    (16, 1.0),
    (20, 1.0),
    (24, 1.0),
];

/// The LTF frequency-domain sequence L₋₂₆…L₂₆ (IEEE 802.11-2012 Eq. 18-8).
pub const LTF_SEQ: [f64; 53] = [
    1.0, 1.0, -1.0, -1.0, 1.0, 1.0, -1.0, 1.0, -1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, -1.0, -1.0, 1.0,
    1.0, -1.0, 1.0, -1.0, 1.0, 1.0, 1.0, 1.0, 0.0, 1.0, -1.0, -1.0, 1.0, 1.0, -1.0, 1.0, -1.0, 1.0,
    -1.0, -1.0, -1.0, -1.0, -1.0, 1.0, 1.0, -1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, 1.0, 1.0, 1.0,
];

/// Frequency-domain LTF value for logical carrier `c` (−26..=26).
pub fn ltf_carrier(c: i32) -> f64 {
    LTF_SEQ[(c + 26) as usize]
}

/// One 64-sample period of the short training symbol (the STF repeats this
/// with period 16; a full 64-sample block contains 4 periods).
pub fn short_symbol_block() -> Vec<Complex> {
    let mut freq = [Complex::ZERO; FFT_SIZE];
    let k = (13.0f64 / 6.0).sqrt();
    for &(c, sign) in STF_CARRIERS.iter() {
        freq[carrier_to_bin(c)] = Complex::new(sign * k, sign * k);
    }
    fft::ifft64(&mut freq);
    // Match the data-symbol power scaling convention (see ofdm.rs).
    let scale = ((FFT_SIZE * FFT_SIZE) as f64 / 52.0).sqrt();
    freq.iter().map(|z| z.scale(scale)).collect()
}

/// One 64-sample long training symbol (time domain).
pub fn long_symbol() -> Vec<Complex> {
    let mut freq = [Complex::ZERO; FFT_SIZE];
    for c in -26..=26 {
        freq[carrier_to_bin(c)] = Complex::new(ltf_carrier(c), 0.0);
    }
    fft::ifft64(&mut freq);
    let scale = ((FFT_SIZE * FFT_SIZE) as f64 / 52.0).sqrt();
    freq.iter().map(|z| z.scale(scale)).collect()
}

/// The complete 320-sample preamble: 160-sample STF + 32-sample guard +
/// two 64-sample long symbols.
pub fn preamble() -> Vec<Complex> {
    let short = short_symbol_block();
    let long = long_symbol();
    let mut out = Vec::with_capacity(320);
    // STF: 2.5 repetitions of the 64-sample block = 160 samples.
    out.extend_from_slice(&short);
    out.extend_from_slice(&short);
    out.extend_from_slice(&short[..32]);
    // LTF: double-length guard (last 32 samples of the long symbol).
    out.extend_from_slice(&long[FFT_SIZE - 2 * CP_LEN..]);
    out.extend_from_slice(&long);
    out.extend_from_slice(&long);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use freerider_dsp::corr;

    #[test]
    fn preamble_is_320_samples() {
        assert_eq!(preamble().len(), 320);
    }

    #[test]
    fn stf_has_period_16() {
        let s = short_symbol_block();
        for k in 0..48 {
            assert!((s[k] - s[k + 16]).abs() < 1e-9, "period break at {k}");
        }
        let p = preamble();
        for k in 0..(160 - 16) {
            assert!((p[k] - p[k + 16]).abs() < 1e-9);
        }
    }

    #[test]
    fn ltf_symbols_repeat() {
        let p = preamble();
        for k in 0..64 {
            assert!((p[192 + k] - p[256 + k]).abs() < 1e-9);
        }
    }

    #[test]
    fn ltf_guard_is_cyclic() {
        let p = preamble();
        // Guard (samples 160..192) equals the tail of the long symbol.
        let long = long_symbol();
        for k in 0..32 {
            assert!((p[160 + k] - long[32 + k]).abs() < 1e-9);
        }
    }

    #[test]
    fn delay_correlation_detects_stf() {
        let p = preamble();
        let m = corr::delay_correlate(&p[..160], 16, 64);
        assert!(m.iter().all(|&v| v > 0.99), "STF self-similarity");
    }

    #[test]
    fn long_symbol_correlation_peaks_at_boundaries() {
        let p = preamble();
        let long = long_symbol();
        let c = corr::normalized_correlation(&p, &long);
        let (idx, val) = corr::peak(&c).unwrap();
        assert!(val > 0.99);
        assert!(idx == 192 || idx == 256, "peak at {idx}");
    }

    #[test]
    fn ltf_sequence_is_bpsk_with_null_dc() {
        assert_eq!(LTF_SEQ.len(), 53);
        assert_eq!(LTF_SEQ[26], 0.0);
        assert!(LTF_SEQ
            .iter()
            .enumerate()
            .all(|(i, &v)| i == 26 || v.abs() == 1.0));
    }
}
