//! The SIGNAL field (PLCP header) of an 802.11 OFDM frame.
//!
//! One BPSK rate-1/2 OFDM symbol carrying 24 bits:
//! `RATE(4) | reserved(1) | LENGTH(12, LSB first) | PARITY(1) | TAIL(6)`.
//! The SIGNAL field is *not* scrambled.

use crate::rates::Mcs;

/// Maximum PSDU length encodable in the 12-bit LENGTH field.
pub const MAX_PSDU_LEN: usize = 4095;

/// Decoded SIGNAL field contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Signal {
    /// The DATA-portion rate.
    pub rate: Mcs,
    /// PSDU length in bytes.
    pub length: usize,
}

/// Errors when parsing a SIGNAL field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalError {
    /// The 4-bit RATE pattern is not one of the eight valid encodings.
    BadRate,
    /// Even-parity check over the first 17 bits failed.
    BadParity,
    /// The reserved bit was set.
    ReservedSet,
}

impl std::fmt::Display for SignalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SignalError::BadRate => write!(f, "invalid RATE field"),
            SignalError::BadParity => write!(f, "SIGNAL parity check failed"),
            SignalError::ReservedSet => write!(f, "reserved bit set"),
        }
    }
}

impl std::error::Error for SignalError {}

impl Signal {
    /// Encodes the 24 SIGNAL bits (before convolutional coding).
    ///
    /// # Panics
    /// Panics if `length > 4095`.
    pub fn encode(&self) -> [u8; 24] {
        assert!(self.length <= MAX_PSDU_LEN, "PSDU too long for SIGNAL");
        let mut bits = [0u8; 24];
        bits[..4].copy_from_slice(&self.rate.signal_rate_bits());
        // bits[4] reserved = 0
        for i in 0..12 {
            bits[5 + i] = ((self.length >> i) & 1) as u8;
        }
        let parity: u8 = bits[..17].iter().sum::<u8>() & 1;
        bits[17] = parity; // even parity
                           // bits[18..24] tail = 0
        bits
    }

    /// Decodes 24 SIGNAL bits.
    pub fn decode(bits: &[u8; 24]) -> Result<Signal, SignalError> {
        let parity: u8 = bits[..18].iter().map(|b| b & 1).sum::<u8>() & 1;
        if parity != 0 {
            return Err(SignalError::BadParity);
        }
        if bits[4] & 1 != 0 {
            return Err(SignalError::ReservedSet);
        }
        let rate = Mcs::from_signal_rate_bits([bits[0], bits[1], bits[2], bits[3]])
            .ok_or(SignalError::BadRate)?;
        let mut length = 0usize;
        for i in 0..12 {
            length |= ((bits[5 + i] & 1) as usize) << i;
        }
        Ok(Signal { rate, length })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_rates() {
        for rate in Mcs::ALL {
            for length in [0usize, 1, 100, 1500, 4095] {
                let s = Signal { rate, length };
                let bits = s.encode();
                assert_eq!(Signal::decode(&bits), Ok(s));
            }
        }
    }

    #[test]
    fn parity_detects_single_bit_error() {
        let s = Signal {
            rate: Mcs::Bpsk12,
            length: 256,
        };
        let mut bits = s.encode();
        bits[7] ^= 1;
        assert!(matches!(Signal::decode(&bits), Err(SignalError::BadParity)));
    }

    #[test]
    fn invalid_rate_rejected() {
        let s = Signal {
            rate: Mcs::Bpsk12,
            length: 10,
        };
        let mut bits = s.encode();
        // 0000 is not a valid rate; fix parity so the rate check is reached.
        let flips = bits[0] + bits[1] + bits[2] + bits[3];
        bits[0] = 0;
        bits[1] = 0;
        bits[2] = 0;
        bits[3] = 0;
        if flips % 2 == 1 {
            bits[17] ^= 1;
        }
        assert_eq!(Signal::decode(&bits), Err(SignalError::BadRate));
    }

    #[test]
    fn tail_bits_are_zero() {
        let bits = Signal {
            rate: Mcs::Qam64ThreeQuarters,
            length: 4095,
        }
        .encode();
        assert!(bits[18..].iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic]
    fn oversize_length_panics() {
        let _ = Signal {
            rate: Mcs::Bpsk12,
            length: 4096,
        }
        .encode();
    }
}
