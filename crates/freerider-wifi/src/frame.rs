//! A minimal 802.11 MPDU wrapper: data frames with a 24-byte MAC header,
//! payload, and CRC-32 FCS.
//!
//! Styled after smoltcp's wire types: `Mpdu<T: AsRef<[u8]>>` wraps a buffer
//! and exposes typed accessors; `Mpdu::build` constructs a well-formed
//! frame. The backscatter receiver runs in "monitor mode" (§3.1 of the
//! paper): frames with bad FCS are still surfaced, with validity reported
//! alongside, because the tag's modifications intentionally corrupt the
//! original FCS.

/// Length of the MAC header this crate uses (frame control … sequence).
pub const HEADER_LEN: usize = 24;
/// Length of the FCS trailer.
pub const FCS_LEN: usize = 4;

/// A MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address FF:FF:FF:FF:FF:FF.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// Convenience constructor from the last octet (locally administered).
    pub fn local(n: u8) -> MacAddr {
        MacAddr([0x02, 0, 0, 0, 0, n])
    }
}

impl std::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// Errors from [`Mpdu::parse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Buffer shorter than header + FCS.
    Truncated,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "MPDU truncated"),
        }
    }
}

impl std::error::Error for FrameError {}

/// An 802.11 data MPDU view over a byte buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mpdu<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Mpdu<T> {
    /// Wraps a buffer, checking only the minimum length.
    pub fn parse(buffer: T) -> Result<Self, FrameError> {
        if buffer.as_ref().len() < HEADER_LEN + FCS_LEN {
            return Err(FrameError::Truncated);
        }
        Ok(Mpdu { buffer })
    }

    /// The whole underlying buffer.
    pub fn as_bytes(&self) -> &[u8] {
        self.buffer.as_ref()
    }

    /// Frame-control field.
    pub fn frame_control(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_le_bytes([b[0], b[1]])
    }

    /// Duration/ID field.
    pub fn duration(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_le_bytes([b[2], b[3]])
    }

    fn addr(&self, off: usize) -> MacAddr {
        let b = self.buffer.as_ref();
        let mut a = [0u8; 6];
        a.copy_from_slice(&b[off..off + 6]);
        MacAddr(a)
    }

    /// Receiver address (Address 1).
    pub fn addr1(&self) -> MacAddr {
        self.addr(4)
    }

    /// Transmitter address (Address 2).
    pub fn addr2(&self) -> MacAddr {
        self.addr(10)
    }

    /// BSSID / Address 3.
    pub fn addr3(&self) -> MacAddr {
        self.addr(16)
    }

    /// Sequence-control field.
    pub fn sequence(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_le_bytes([b[22], b[23]])
    }

    /// Frame body (between header and FCS).
    pub fn payload(&self) -> &[u8] {
        let b = self.buffer.as_ref();
        &b[HEADER_LEN..b.len() - FCS_LEN]
    }

    /// Whether the FCS trailer matches the frame contents.
    pub fn fcs_valid(&self) -> bool {
        freerider_coding::crc::check_crc32(self.buffer.as_ref())
    }
}

impl Mpdu<Vec<u8>> {
    /// Builds a data MPDU with valid FCS.
    pub fn build(to: MacAddr, from: MacAddr, sequence: u16, payload: &[u8]) -> Mpdu<Vec<u8>> {
        let mut buf = Vec::with_capacity(HEADER_LEN + payload.len() + FCS_LEN);
        buf.extend_from_slice(&0x0008u16.to_le_bytes()); // type=data
        buf.extend_from_slice(&0u16.to_le_bytes()); // duration
        buf.extend_from_slice(&to.0);
        buf.extend_from_slice(&from.0);
        buf.extend_from_slice(&to.0); // BSSID = RA for simplicity
        buf.extend_from_slice(&(sequence << 4).to_le_bytes());
        buf.extend_from_slice(payload);
        freerider_coding::crc::append_crc32(&mut buf);
        Mpdu { buffer: buf }
    }

    /// Consumes the wrapper, returning the owned bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buffer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_parse() {
        let f = Mpdu::build(MacAddr::local(1), MacAddr::local(2), 7, b"hello tag");
        assert!(f.fcs_valid());
        assert_eq!(f.payload(), b"hello tag");
        assert_eq!(f.addr1(), MacAddr::local(1));
        assert_eq!(f.addr2(), MacAddr::local(2));
        assert_eq!(f.sequence() >> 4, 7);
        assert_eq!(f.frame_control(), 0x0008);
    }

    #[test]
    fn corrupt_fcs_detected_but_frame_still_readable() {
        let mut bytes = Mpdu::build(MacAddr::BROADCAST, MacAddr::local(9), 0, b"data").into_bytes();
        bytes[HEADER_LEN] ^= 0xFF;
        let f = Mpdu::parse(bytes).unwrap();
        assert!(!f.fcs_valid());
        // Monitor-mode behaviour: the payload is still accessible.
        assert_eq!(f.payload().len(), 4);
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            Mpdu::parse(vec![0u8; HEADER_LEN + FCS_LEN - 1]).unwrap_err(),
            FrameError::Truncated
        );
    }

    #[test]
    fn empty_payload_ok() {
        let f = Mpdu::build(MacAddr::local(1), MacAddr::local(2), 0, b"");
        assert!(f.fcs_valid());
        assert!(f.payload().is_empty());
    }

    #[test]
    fn display_mac() {
        assert_eq!(MacAddr::local(0x1f).to_string(), "02:00:00:00:00:1f");
    }
}
