//! OFDM symbol assembly and disassembly.
//!
//! 64 subcarriers at 312.5 kHz spacing: 48 data, 4 pilots (±7, ±21), a null
//! at DC and 11 guard carriers. Useful symbol 64 samples (3.2 µs) plus a
//! 16-sample cyclic prefix (0.8 µs).

use crate::{CP_LEN, FFT_SIZE, N_DATA_CARRIERS};
use freerider_dsp::{fft, Complex};

/// Logical subcarrier indices (−26..=26 excluding 0, ±7, ±21) of the 48
/// data carriers, in modulation order per the standard.
pub const DATA_CARRIERS: [i32; N_DATA_CARRIERS] = [
    -26, -25, -24, -23, -22, -20, -19, -18, -17, -16, -15, -14, -13, -12, -11, -10, -9, -8, -6, -5,
    -4, -3, -2, -1, 1, 2, 3, 4, 5, 6, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 22, 23, 24,
    25, 26,
];

/// Pilot subcarrier indices.
pub const PILOT_CARRIERS: [i32; 4] = [-21, -7, 7, 21];

/// Base pilot values on (−21, −7, +7, +21) before polarity scrambling.
pub const PILOT_VALUES: [f64; 4] = [1.0, 1.0, 1.0, -1.0];

/// The 127-element pilot polarity sequence p₀…p₁₂₆ (IEEE 802.11-2012
/// §18.3.5.10): the scrambler sequence for the all-ones seed, mapped
/// 0→+1, 1→−1. Generated once at startup.
pub fn pilot_polarity() -> [f64; 127] {
    // x⁷+x⁴+1 LFSR from state 1111111 — reuse the identical recurrence.
    let mut state: u8 = 0x7F;
    let mut out = [0.0f64; 127];
    for slot in out.iter_mut() {
        let x = ((state >> 3) ^ (state >> 6)) & 1;
        state = ((state << 1) | x) & 0x7F;
        *slot = if x == 1 { -1.0 } else { 1.0 };
    }
    out
}

/// Converts a logical subcarrier index (−32..=31) to an FFT bin (0..=63).
#[inline]
pub fn carrier_to_bin(carrier: i32) -> usize {
    ((carrier + FFT_SIZE as i32) % FFT_SIZE as i32) as usize
}

/// Assembles one time-domain OFDM symbol (with cyclic prefix) from 48 data
/// constellation points.
///
/// `pilot_polarity` is pₙ for this symbol (+1 or −1).
///
/// # Panics
/// Panics if `data.len() != 48`.
pub fn modulate_symbol(data: &[Complex], pilot_polarity: f64) -> Vec<Complex> {
    assert_eq!(data.len(), N_DATA_CARRIERS, "need 48 data carriers");
    let mut freq = [Complex::ZERO; FFT_SIZE];
    for (i, &c) in DATA_CARRIERS.iter().enumerate() {
        freq[carrier_to_bin(c)] = data[i];
    }
    for (i, &c) in PILOT_CARRIERS.iter().enumerate() {
        freq[carrier_to_bin(c)] = Complex::new(PILOT_VALUES[i] * pilot_polarity, 0.0);
    }
    fft::ifft64(&mut freq);
    // Scale so total symbol power is comparable across symbols: the IFFT's
    // 1/N normalisation leaves per-sample power = (52/64)/64; rescale to
    // mean unit sample power for 52 active carriers of unit power.
    let scale = (FFT_SIZE * FFT_SIZE) as f64 / 52.0;
    let scale = scale.sqrt();
    let mut sym = Vec::with_capacity(FFT_SIZE + CP_LEN);
    sym.extend_from_slice(&freq[FFT_SIZE - CP_LEN..]);
    sym.extend_from_slice(&freq);
    for s in sym.iter_mut() {
        *s = s.scale(scale);
    }
    sym
}

/// Extracted frequency-domain contents of one received OFDM symbol.
#[derive(Debug, Clone)]
pub struct SymbolCarriers {
    /// The 48 data-carrier values (un-equalized).
    pub data: [Complex; N_DATA_CARRIERS],
    /// The 4 pilot-carrier values (un-equalized).
    pub pilots: [Complex; 4],
}

/// Disassembles one received symbol: strips the cyclic prefix, FFTs, and
/// extracts data and pilot carriers.
///
/// # Panics
/// Panics if `samples.len() != 80`.
pub fn demodulate_symbol(samples: &[Complex]) -> SymbolCarriers {
    assert_eq!(
        samples.len(),
        FFT_SIZE + CP_LEN,
        "need one 80-sample symbol"
    );
    let mut freq = [Complex::ZERO; FFT_SIZE];
    freq.copy_from_slice(&samples[CP_LEN..]);
    fft::fft64(&mut freq);
    let mut data = [Complex::ZERO; N_DATA_CARRIERS];
    for (i, &c) in DATA_CARRIERS.iter().enumerate() {
        data[i] = freq[carrier_to_bin(c)];
    }
    let mut pilots = [Complex::ZERO; 4];
    for (i, &c) in PILOT_CARRIERS.iter().enumerate() {
        pilots[i] = freq[carrier_to_bin(c)];
    }
    SymbolCarriers { data, pilots }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carrier_layout_is_consistent() {
        // 48 data + 4 pilots, no duplicates, none at DC or guards.
        let mut all: Vec<i32> = DATA_CARRIERS.to_vec();
        all.extend_from_slice(&PILOT_CARRIERS);
        assert_eq!(all.len(), 52);
        let mut sorted = all.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 52, "duplicate carriers");
        assert!(!all.contains(&0), "DC must be null");
        assert!(all.iter().all(|&c| (-26..=26).contains(&c)));
    }

    #[test]
    fn modulate_demodulate_round_trip() {
        let data: Vec<Complex> = (0..48)
            .map(|i| Complex::cis(i as f64 * 0.7) * if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let sym = modulate_symbol(&data, 1.0);
        assert_eq!(sym.len(), 80);
        let rx = demodulate_symbol(&sym);
        // Round trip is exact up to the power scale factor.
        let scale = rx.data[0].abs() / data[0].abs();
        for (a, b) in rx.data.iter().zip(data.iter()) {
            assert!((*a - b.scale(scale)).abs() < 1e-9);
        }
        // Pilots come back with the right signs.
        assert!(rx.pilots[0].re > 0.0 && rx.pilots[3].re < 0.0);
    }

    #[test]
    fn cyclic_prefix_is_a_copy_of_the_tail() {
        let data: Vec<Complex> = (0..48).map(|i| Complex::cis(i as f64)).collect();
        let sym = modulate_symbol(&data, 1.0);
        for k in 0..CP_LEN {
            assert!((sym[k] - sym[FFT_SIZE + k]).abs() < 1e-12);
        }
    }

    #[test]
    fn mean_sample_power_is_unity() {
        // With unit-power constellation points the time-domain symbol should
        // have ~unit mean sample power (by Parseval and our scaling).
        let data: Vec<Complex> = (0..48).map(|i| Complex::cis(1.3 * i as f64)).collect();
        let sym = modulate_symbol(&data, 1.0);
        // Measure over the 64 useful samples: the CP repeats an arbitrary
        // slice of the symbol, so including it biases the estimate.
        let p: f64 = sym[CP_LEN..].iter().map(|z| z.norm_sqr()).sum::<f64>() / 64.0;
        assert!((p - 1.0).abs() < 0.05, "power {p}");
    }

    #[test]
    fn pilot_polarity_sequence_starts_correctly() {
        // First 10 values per the standard: 1,1,1,1,-1,-1,-1,1,-1,-1 …
        let p = pilot_polarity();
        assert_eq!(
            &p[..10],
            &[1.0, 1.0, 1.0, 1.0, -1.0, -1.0, -1.0, 1.0, -1.0, -1.0]
        );
        // Balanced: 63 ones of value −1 is impossible — maximal sequence has
        // 64 of one sign.
        let minus: usize = p.iter().filter(|&&v| v < 0.0).count();
        assert_eq!(minus, 64);
    }

    #[test]
    fn phase_rotation_commutes_with_ofdm() {
        // Multiplying the time-domain symbol by e^{jθ} rotates every
        // subcarrier by θ — the frequency-flat property a backscatter tag
        // relies on (§2.3.1 of the paper).
        let theta = std::f64::consts::PI;
        let data: Vec<Complex> = (0..48).map(|i| Complex::cis(0.9 * i as f64)).collect();
        let sym = modulate_symbol(&data, 1.0);
        let rotated: Vec<Complex> = sym.iter().map(|&z| z * Complex::cis(theta)).collect();
        let a = demodulate_symbol(&sym);
        let b = demodulate_symbol(&rotated);
        for (x, y) in a.data.iter().zip(b.data.iter()) {
            assert!((*x * Complex::cis(theta) - *y).abs() < 1e-9);
        }
    }
}
