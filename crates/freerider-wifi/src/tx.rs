//! The 802.11g OFDM transmitter.
//!
//! Implements the full clause-18 TX chain of Figure 6 in the FreeRider
//! paper: scrambler → convolutional encoder (+ puncturing) → per-symbol
//! interleaver → constellation mapper → OFDM modulator, preceded by the
//! PLCP preamble and SIGNAL field.

use crate::mapping::map_bits;
use crate::ofdm::{modulate_symbol, pilot_polarity};
use crate::plcp::{Signal, MAX_PSDU_LEN};
use crate::preamble::preamble;
use crate::rates::Mcs;
use freerider_coding::convolutional::{encode, CodeRate};
use freerider_coding::interleaver::Interleaver;
use freerider_coding::scrambler::Scrambler;
use freerider_dsp::{bits, IqBuf};

/// Transmitter configuration.
#[derive(Debug, Clone, Copy)]
pub struct TxConfig {
    /// Modulation and coding scheme for the DATA portion.
    pub rate: Mcs,
    /// Scrambler seed (nonzero, 7 bits). Real hardware randomises this per
    /// frame; a fixed default keeps experiments reproducible.
    pub scrambler_seed: u8,
}

impl Default for TxConfig {
    fn default() -> Self {
        TxConfig {
            // 6 Mbps is the rate the FreeRider evaluation runs on (§3.2.1).
            rate: Mcs::Bpsk12,
            scrambler_seed: Scrambler::DEFAULT_SEED,
        }
    }
}

/// Errors from [`Transmitter::transmit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxError {
    /// PSDU exceeds the 4095-byte SIGNAL LENGTH field.
    PsduTooLong(usize),
}

impl std::fmt::Display for TxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxError::PsduTooLong(n) => write!(f, "PSDU of {n} bytes exceeds 4095"),
        }
    }
}

impl std::error::Error for TxError {}

/// The 802.11g OFDM transmitter.
#[derive(Debug, Clone)]
pub struct Transmitter {
    config: TxConfig,
}

impl Transmitter {
    /// Creates a transmitter.
    pub fn new(config: TxConfig) -> Self {
        Transmitter { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TxConfig {
        &self.config
    }

    /// Generates the baseband IQ waveform (20 Msps, ~unit sample power)
    /// for one PPDU carrying `psdu`.
    pub fn transmit(&self, psdu: &[u8]) -> Result<IqBuf, TxError> {
        if psdu.len() > MAX_PSDU_LEN {
            return Err(TxError::PsduTooLong(psdu.len()));
        }
        let rate = self.config.rate;
        let polarity = pilot_polarity();
        let mut samples = preamble();

        // --- SIGNAL field: BPSK rate 1/2, not scrambled, pilot p0. ---
        let sig_bits = Signal {
            rate,
            length: psdu.len(),
        }
        .encode();
        let sig_coded = encode(&sig_bits, CodeRate::Half);
        let il_signal = Interleaver::new(48, 1);
        let sig_inter = il_signal.interleave_symbol(&sig_coded);
        let sig_points = map_bits(&sig_inter, crate::rates::Modulation::Bpsk);
        samples.extend(modulate_symbol(&sig_points, polarity[0]));

        // --- DATA field. ---
        let n_dbps = rate.data_bits_per_symbol();
        let n_sym = rate.data_symbols_for(psdu.len());
        let mut data_bits = Vec::with_capacity(n_sym * n_dbps);
        data_bits.extend_from_slice(&[0u8; 16]); // SERVICE
        data_bits.extend(bits::bytes_to_bits_lsb(psdu));
        data_bits.extend_from_slice(&[0u8; 6]); // tail
        data_bits.resize(n_sym * n_dbps, 0); // pad

        let mut scrambler = Scrambler::new(self.config.scrambler_seed);
        let mut scrambled = scrambler.scramble(&data_bits);
        // Replace the scrambled tail bits with zeros to terminate the trellis.
        let tail_start = 16 + 8 * psdu.len();
        for b in scrambled[tail_start..tail_start + 6].iter_mut() {
            *b = 0;
        }

        let coded = encode(&scrambled, rate.code_rate());
        let il = Interleaver::new(
            rate.coded_bits_per_symbol(),
            rate.modulation().bits_per_subcarrier(),
        );
        debug_assert_eq!(coded.len(), n_sym * rate.coded_bits_per_symbol());
        for (n, chunk) in coded.chunks(rate.coded_bits_per_symbol()).enumerate() {
            let inter = il.interleave_symbol(chunk);
            let points = map_bits(&inter, rate.modulation());
            samples.extend(modulate_symbol(&points, polarity[(n + 1) % 127]));
        }
        Ok(samples)
    }

    /// Total PPDU duration in samples for a PSDU of `len` bytes.
    pub fn ppdu_len_samples(&self, len: usize) -> usize {
        crate::PREAMBLE_LEN + crate::SYMBOL_LEN * (1 + self.config.rate.data_symbols_for(len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freerider_dsp::db;

    #[test]
    fn waveform_length_matches_airtime() {
        for rate in Mcs::ALL {
            let tx = Transmitter::new(TxConfig {
                rate,
                ..TxConfig::default()
            });
            let wave = tx.transmit(&[0xAB; 100]).unwrap();
            assert_eq!(wave.len(), tx.ppdu_len_samples(100), "{rate:?}");
            let us = wave.len() as f64 / 20.0;
            assert!((us - rate.airtime_us(100)).abs() < 1e-9, "{rate:?}");
        }
    }

    #[test]
    fn mean_power_is_near_unity() {
        let tx = Transmitter::new(TxConfig::default());
        let wave = tx.transmit(&[0x5A; 200]).unwrap();
        let p = db::mean_power(&wave);
        assert!((p - 1.0).abs() < 0.15, "power {p}");
    }

    #[test]
    fn oversize_psdu_rejected() {
        let tx = Transmitter::new(TxConfig::default());
        assert_eq!(
            tx.transmit(&vec![0; 4096]).unwrap_err(),
            TxError::PsduTooLong(4096)
        );
    }

    #[test]
    fn different_payloads_produce_different_waveforms() {
        let tx = Transmitter::new(TxConfig::default());
        let a = tx.transmit(b"payload one").unwrap();
        let b = tx.transmit(b"payload two").unwrap();
        assert_eq!(a.len(), b.len());
        // Preamble + SIGNAL identical…
        for k in 0..400 {
            assert!((a[k] - b[k]).abs() < 1e-12);
        }
        // …data differs.
        let diff: f64 = a[400..]
            .iter()
            .zip(&b[400..])
            .map(|(x, y)| (*x - *y).abs())
            .sum();
        assert!(diff > 1.0);
    }
}
