//! Constellation mapping and hard-decision demapping
//! (IEEE 802.11-2012 §18.3.5.8, Gray-coded).
//!
//! Normalisation factors make every constellation unit average power:
//! BPSK 1, QPSK 1/√2, 16-QAM 1/√10, 64-QAM 1/√42.

use crate::rates::Modulation;
use freerider_dsp::Complex;

const KMOD_QPSK: f64 = std::f64::consts::FRAC_1_SQRT_2;
const KMOD_16: f64 = 0.316_227_766_016_837_94; // 1/√10
const KMOD_64: f64 = 0.154_303_349_962_091_9; // 1/√42

/// Gray mapping of bit pairs/quads to one PAM axis level.
/// 16-QAM axis: 00→−3, 01→−1, 11→+1, 10→+3.
fn pam4(b0: u8, b1: u8) -> f64 {
    match (b0 & 1, b1 & 1) {
        (0, 0) => -3.0,
        (0, 1) => -1.0,
        (1, 1) => 1.0,
        (1, 0) => 3.0,
        _ => unreachable!(),
    }
}

/// 64-QAM axis: 000→−7, 001→−5, 011→−3, 010→−1, 110→+1, 111→+3, 101→+5, 100→+7.
fn pam8(b0: u8, b1: u8, b2: u8) -> f64 {
    match (b0 & 1, b1 & 1, b2 & 1) {
        (0, 0, 0) => -7.0,
        (0, 0, 1) => -5.0,
        (0, 1, 1) => -3.0,
        (0, 1, 0) => -1.0,
        (1, 1, 0) => 1.0,
        (1, 1, 1) => 3.0,
        (1, 0, 1) => 5.0,
        (1, 0, 0) => 7.0,
        _ => unreachable!(),
    }
}

fn pam4_demap(x: f64) -> (u8, u8) {
    // Decision boundaries at −2, 0, +2.
    if x < -2.0 {
        (0, 0)
    } else if x < 0.0 {
        (0, 1)
    } else if x < 2.0 {
        (1, 1)
    } else {
        (1, 0)
    }
}

fn pam8_demap(x: f64) -> (u8, u8, u8) {
    let lvl = ((x + 7.0) / 2.0).round().clamp(0.0, 7.0) as i32;
    match lvl {
        0 => (0, 0, 0),
        1 => (0, 0, 1),
        2 => (0, 1, 1),
        3 => (0, 1, 0),
        4 => (1, 1, 0),
        5 => (1, 1, 1),
        6 => (1, 0, 1),
        _ => (1, 0, 0),
    }
}

/// Maps coded bits to constellation points.
///
/// # Panics
/// Panics if `bits.len()` is not a multiple of the bits-per-symbol.
pub fn map_bits(bits: &[u8], modulation: Modulation) -> Vec<Complex> {
    let bps = modulation.bits_per_subcarrier();
    assert_eq!(bits.len() % bps, 0, "bit count not a multiple of {bps}");
    bits.chunks(bps)
        .map(|c| match modulation {
            Modulation::Bpsk => Complex::new(2.0 * c[0] as f64 - 1.0, 0.0),
            Modulation::Qpsk => Complex::new(
                (2.0 * c[0] as f64 - 1.0) * KMOD_QPSK,
                (2.0 * c[1] as f64 - 1.0) * KMOD_QPSK,
            ),
            Modulation::Qam16 => {
                Complex::new(pam4(c[0], c[1]) * KMOD_16, pam4(c[2], c[3]) * KMOD_16)
            }
            Modulation::Qam64 => Complex::new(
                pam8(c[0], c[1], c[2]) * KMOD_64,
                pam8(c[3], c[4], c[5]) * KMOD_64,
            ),
        })
        .collect()
}

/// Hard-decision demapping of equalized constellation points back to bits.
pub fn demap_symbols(symbols: &[Complex], modulation: Modulation) -> Vec<u8> {
    let mut bits = Vec::with_capacity(symbols.len() * modulation.bits_per_subcarrier());
    for &s in symbols {
        match modulation {
            Modulation::Bpsk => bits.push(u8::from(s.re >= 0.0)),
            Modulation::Qpsk => {
                bits.push(u8::from(s.re >= 0.0));
                bits.push(u8::from(s.im >= 0.0));
            }
            Modulation::Qam16 => {
                let (a, b) = pam4_demap(s.re / KMOD_16);
                let (c, d) = pam4_demap(s.im / KMOD_16);
                bits.extend_from_slice(&[a, b, c, d]);
            }
            Modulation::Qam64 => {
                let (a, b, c) = pam8_demap(s.re / KMOD_64);
                let (d, e, f) = pam8_demap(s.im / KMOD_64);
                bits.extend_from_slice(&[a, b, c, d, e, f]);
            }
        }
    }
    bits
}

/// The ideal constellation point nearest to `s` (the hard decision,
/// re-mapped). Used for per-subcarrier EVM measurement.
pub fn nearest_point(s: Complex, modulation: Modulation) -> Complex {
    let bits = demap_symbols(std::slice::from_ref(&s), modulation);
    map_bits(&bits, modulation)[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use freerider_rt::Rng64;

    const ALL: [Modulation; 4] = [
        Modulation::Bpsk,
        Modulation::Qpsk,
        Modulation::Qam16,
        Modulation::Qam64,
    ];

    #[test]
    fn round_trip_all_modulations() {
        let mut rng = Rng64::new(1);
        for m in ALL {
            let n = m.bits_per_subcarrier() * 64;
            let bits: Vec<u8> = (0..n).map(|_| rng.bit()).collect();
            let syms = map_bits(&bits, m);
            assert_eq!(demap_symbols(&syms, m), bits, "{m:?}");
        }
    }

    #[test]
    fn unit_average_power() {
        let mut rng = Rng64::new(2);
        for m in ALL {
            let n = m.bits_per_subcarrier() * 6000;
            let bits: Vec<u8> = (0..n).map(|_| rng.bit()).collect();
            let syms = map_bits(&bits, m);
            let p: f64 = syms.iter().map(|z| z.norm_sqr()).sum::<f64>() / syms.len() as f64;
            assert!((p - 1.0).abs() < 0.05, "{m:?} power {p}");
        }
    }

    #[test]
    fn gray_neighbours_differ_by_one_bit() {
        // Adjacent 16-QAM axis levels differ in exactly one bit.
        let levels = [(0u8, 0u8), (0, 1), (1, 1), (1, 0)];
        for w in levels.windows(2) {
            let d = (w[0].0 ^ w[1].0) + (w[0].1 ^ w[1].1);
            assert_eq!(d, 1);
        }
    }

    #[test]
    fn pi_rotation_flips_all_bpsk_and_qpsk_bits() {
        // The FreeRider property: a 180° phase offset maps BPSK/QPSK
        // codewords to valid codewords whose bits are all complemented.
        for m in [Modulation::Bpsk, Modulation::Qpsk] {
            let n = m.bits_per_subcarrier() * 16;
            let bits: Vec<u8> = (0..n).map(|i| (i % 3 == 0) as u8).collect();
            let rotated: Vec<Complex> = map_bits(&bits, m).iter().map(|&z| -z).collect();
            let demapped = demap_symbols(&rotated, m);
            let complemented: Vec<u8> = bits.iter().map(|b| b ^ 1).collect();
            assert_eq!(demapped, complemented, "{m:?}");
        }
    }

    #[test]
    fn pi_rotation_flips_only_sign_bits_of_qam16() {
        // For 16-QAM, −(I,Q) flips only b0 and b2 (the sign bits) — this is
        // why FreeRider's XOR decoding works at 6/9/12/18 Mbps but not at
        // the QAM rates (the tag flip no longer complements whole symbols).
        let bits: Vec<u8> = vec![0, 0, 0, 0, 1, 0, 1, 1, 0, 1, 1, 0];
        let rotated: Vec<Complex> = map_bits(&bits, Modulation::Qam16)
            .iter()
            .map(|&z| -z)
            .collect();
        let demapped = demap_symbols(&rotated, Modulation::Qam16);
        for (i, (a, b)) in bits.iter().zip(demapped.iter()).enumerate() {
            if i % 2 == 0 {
                assert_eq!(*a ^ 1, *b, "sign bit {i} must flip");
            } else {
                assert_eq!(a, b, "magnitude bit {i} must not flip");
            }
        }
    }

    #[test]
    fn nearest_point_snaps_to_ideal() {
        let mut rng = Rng64::new(4);
        for m in ALL {
            let bits: Vec<u8> = (0..m.bits_per_subcarrier() * 50)
                .map(|_| rng.bit())
                .collect();
            for &z in &map_bits(&bits, m) {
                let perturbed = z + Complex::new(0.03, -0.03);
                let snapped = nearest_point(perturbed, m);
                assert!((snapped - z).norm_sqr() < 1e-20, "{m:?}");
            }
        }
    }

    #[test]
    fn demap_is_nearest_neighbour_under_noise() {
        let mut rng = Rng64::new(3);
        let bits: Vec<u8> = (0..6 * 300).map(|_| rng.bit()).collect();
        let syms = map_bits(&bits, Modulation::Qam64);
        // Tiny perturbation must not change decisions.
        let noisy: Vec<Complex> = syms
            .iter()
            .map(|&z| z + Complex::new(0.02, -0.02))
            .collect();
        assert_eq!(demap_symbols(&noisy, Modulation::Qam64), bits);
    }
}

/// Per-bit soft demapping (max-log LLR approximations), weighted by the
/// subcarrier's channel power gain.
///
/// Convention: positive = bit 1. The weighting makes bits on faded
/// subcarriers low-confidence so the soft Viterbi decoder discounts them —
/// essential on frequency-selective channels.
pub fn soft_demap_symbols(symbols: &[Complex], gains: &[f64], modulation: Modulation) -> Vec<f64> {
    let mut llrs = Vec::with_capacity(symbols.len() * modulation.bits_per_subcarrier());
    soft_demap_symbols_into(symbols, gains, modulation, &mut llrs);
    llrs
}

/// [`soft_demap_symbols`] into a caller-provided buffer (cleared first),
/// for the allocation-free RX path. Values are identical.
pub fn soft_demap_symbols_into(
    symbols: &[Complex],
    gains: &[f64],
    modulation: Modulation,
    llrs: &mut Vec<f64>,
) {
    assert_eq!(symbols.len(), gains.len(), "one gain per subcarrier");
    llrs.clear();
    llrs.reserve(symbols.len() * modulation.bits_per_subcarrier());
    for (&s, &g) in symbols.iter().zip(gains.iter()) {
        let g = g.max(0.0);
        match modulation {
            Modulation::Bpsk => llrs.push(s.re * g),
            Modulation::Qpsk => {
                llrs.push(s.re * g / KMOD_QPSK);
                llrs.push(s.im * g / KMOD_QPSK);
            }
            Modulation::Qam16 => {
                let x = s.re / KMOD_16;
                let y = s.im / KMOD_16;
                // Max-log LLRs for the Gray PAM4 axis {00,01,11,10}:
                // b0 = sign bit, b1 = inner/outer magnitude bit.
                llrs.push(x * g);
                llrs.push((2.0 - x.abs()) * g);
                llrs.push(y * g);
                llrs.push((2.0 - y.abs()) * g);
            }
            Modulation::Qam64 => {
                let x = s.re / KMOD_64;
                let y = s.im / KMOD_64;
                llrs.push(x * g);
                llrs.push((4.0 - x.abs()) * g);
                llrs.push((2.0 - (x.abs() - 4.0).abs()) * g);
                llrs.push(y * g);
                llrs.push((4.0 - y.abs()) * g);
                llrs.push((2.0 - (y.abs() - 4.0).abs()) * g);
            }
        }
    }
}

/// Batched soft demapping over a whole packet's worth of equalised OFDM
/// symbols in one call: the modulation `match` hoists out of the loop, the
/// output reserves once for all `n_sym · 48 · bpsc` LLRs, and each
/// modulation's body is a straight element-wise sweep the autovectoriser
/// handles. Per-LLR arithmetic is exactly [`soft_demap_symbols_into`]'s —
/// the batch output equals the per-symbol outputs concatenated, value for
/// value (`batch_demap_is_bit_identical` pins it).
// lint: hot-path
pub fn soft_demap_batch_into(
    symbols: &[[Complex; crate::N_DATA_CARRIERS]],
    gains: &[f64],
    modulation: Modulation,
    llrs: &mut Vec<f64>,
) {
    assert_eq!(
        gains.len(),
        crate::N_DATA_CARRIERS,
        "one gain per subcarrier"
    );
    llrs.clear();
    llrs.reserve(symbols.len() * crate::N_DATA_CARRIERS * modulation.bits_per_subcarrier());
    match modulation {
        Modulation::Bpsk => {
            for sym in symbols {
                for (&s, &g) in sym.iter().zip(gains.iter()) {
                    let g = g.max(0.0);
                    llrs.push(s.re * g);
                }
            }
        }
        Modulation::Qpsk => {
            for sym in symbols {
                for (&s, &g) in sym.iter().zip(gains.iter()) {
                    let g = g.max(0.0);
                    llrs.push(s.re * g / KMOD_QPSK);
                    llrs.push(s.im * g / KMOD_QPSK);
                }
            }
        }
        Modulation::Qam16 => {
            for sym in symbols {
                for (&s, &g) in sym.iter().zip(gains.iter()) {
                    let g = g.max(0.0);
                    let x = s.re / KMOD_16;
                    let y = s.im / KMOD_16;
                    llrs.push(x * g);
                    llrs.push((2.0 - x.abs()) * g);
                    llrs.push(y * g);
                    llrs.push((2.0 - y.abs()) * g);
                }
            }
        }
        Modulation::Qam64 => {
            for sym in symbols {
                for (&s, &g) in sym.iter().zip(gains.iter()) {
                    let g = g.max(0.0);
                    let x = s.re / KMOD_64;
                    let y = s.im / KMOD_64;
                    llrs.push(x * g);
                    llrs.push((4.0 - x.abs()) * g);
                    llrs.push((2.0 - (x.abs() - 4.0).abs()) * g);
                    llrs.push(y * g);
                    llrs.push((4.0 - y.abs()) * g);
                    llrs.push((2.0 - (y.abs() - 4.0).abs()) * g);
                }
            }
        }
    }
}

/// [`soft_demap_batch_into`] with the per-symbol deinterleave scatter
/// fused in: LLR `j` of symbol `n` is written straight to
/// `out[n·N_CBPS + inv[j]]` instead of round-tripping an interleaved LLR
/// plane through memory and scattering it in a second pass. `inv` is the
/// deinterleaver's scatter map ([`Interleaver::inverse_map`]); since the
/// fusion only changes *placement*, every LLR value is bit-identical to
/// the unfused demap-then-deinterleave pipeline
/// (`fused_demap_deinterleave_is_bit_identical` pins it).
///
/// `out` is cleared and resized to `symbols.len() · N_CBPS`; `inv` being a
/// permutation of one symbol's bit positions means every slot is written.
///
/// [`Interleaver::inverse_map`]: freerider_coding::interleaver::Interleaver::inverse_map
// lint: hot-path
pub fn soft_demap_deinterleave_batch_into(
    symbols: &[[Complex; crate::N_DATA_CARRIERS]],
    gains: &[f64],
    modulation: Modulation,
    inv: &[usize],
    out: &mut Vec<f64>,
) {
    assert_eq!(
        gains.len(),
        crate::N_DATA_CARRIERS,
        "one gain per subcarrier"
    );
    let bpsc = modulation.bits_per_subcarrier();
    let n_cbps = crate::N_DATA_CARRIERS * bpsc;
    assert_eq!(inv.len(), n_cbps, "deinterleave map must cover one symbol");
    out.clear();
    out.resize(symbols.len() * n_cbps, 0.0);
    match modulation {
        Modulation::Bpsk => {
            for (sym, dst) in symbols.iter().zip(out.chunks_exact_mut(n_cbps)) {
                for ((&s, &g), &p) in sym.iter().zip(gains.iter()).zip(inv.iter()) {
                    let g = g.max(0.0);
                    dst[p] = s.re * g;
                }
            }
        }
        Modulation::Qpsk => {
            for (sym, dst) in symbols.iter().zip(out.chunks_exact_mut(n_cbps)) {
                for ((&s, &g), p) in sym.iter().zip(gains.iter()).zip(inv.chunks_exact(2)) {
                    let g = g.max(0.0);
                    dst[p[0]] = s.re * g / KMOD_QPSK;
                    dst[p[1]] = s.im * g / KMOD_QPSK;
                }
            }
        }
        Modulation::Qam16 => {
            for (sym, dst) in symbols.iter().zip(out.chunks_exact_mut(n_cbps)) {
                for ((&s, &g), p) in sym.iter().zip(gains.iter()).zip(inv.chunks_exact(4)) {
                    let g = g.max(0.0);
                    let x = s.re / KMOD_16;
                    let y = s.im / KMOD_16;
                    dst[p[0]] = x * g;
                    dst[p[1]] = (2.0 - x.abs()) * g;
                    dst[p[2]] = y * g;
                    dst[p[3]] = (2.0 - y.abs()) * g;
                }
            }
        }
        Modulation::Qam64 => {
            for (sym, dst) in symbols.iter().zip(out.chunks_exact_mut(n_cbps)) {
                for ((&s, &g), p) in sym.iter().zip(gains.iter()).zip(inv.chunks_exact(6)) {
                    let g = g.max(0.0);
                    let x = s.re / KMOD_64;
                    let y = s.im / KMOD_64;
                    dst[p[0]] = x * g;
                    dst[p[1]] = (4.0 - x.abs()) * g;
                    dst[p[2]] = (2.0 - (x.abs() - 4.0).abs()) * g;
                    dst[p[3]] = y * g;
                    dst[p[4]] = (4.0 - y.abs()) * g;
                    dst[p[5]] = (2.0 - (y.abs() - 4.0).abs()) * g;
                }
            }
        }
    }
}

#[cfg(test)]
mod soft_tests {
    use super::*;
    use freerider_rt::Rng64;

    #[test]
    fn soft_signs_match_hard_decisions() {
        let mut rng = Rng64::new(7);
        for m in [
            Modulation::Bpsk,
            Modulation::Qpsk,
            Modulation::Qam16,
            Modulation::Qam64,
        ] {
            let bits: Vec<u8> = (0..m.bits_per_subcarrier() * 200)
                .map(|_| rng.bit())
                .collect();
            let syms = map_bits(&bits, m);
            let gains = vec![1.0; syms.len()];
            let llrs = soft_demap_symbols(&syms, &gains, m);
            let hard: Vec<u8> = llrs.iter().map(|&l| u8::from(l > 0.0)).collect();
            assert_eq!(hard, bits, "{m:?}");
        }
    }

    #[test]
    fn gain_scales_confidence() {
        let syms = vec![Complex::new(1.0, 0.0); 2];
        let llrs = soft_demap_symbols(&syms, &[1.0, 0.01], Modulation::Bpsk);
        assert!(llrs[0] > 50.0 * llrs[1]);
    }

    #[test]
    #[should_panic]
    fn mismatched_gains_panic() {
        let _ = soft_demap_symbols(&[Complex::ONE], &[1.0, 1.0], Modulation::Bpsk);
    }

    #[test]
    fn batch_demap_is_bit_identical() {
        // The batched demapper must equal the per-symbol demapper outputs
        // concatenated, bit for bit, at every modulation — including
        // negative gains (clamped) and zero points.
        let mut rng = Rng64::new(0xDE3A);
        for m in [
            Modulation::Bpsk,
            Modulation::Qpsk,
            Modulation::Qam16,
            Modulation::Qam64,
        ] {
            for n_sym in [0usize, 1, 3, 17] {
                let mut gains = [0.0f64; crate::N_DATA_CARRIERS];
                for g in gains.iter_mut() {
                    *g = rng.gauss(); // negatives exercise the clamp
                }
                let symbols: Vec<[Complex; crate::N_DATA_CARRIERS]> = (0..n_sym)
                    .map(|_| {
                        let mut sym = [Complex::ZERO; crate::N_DATA_CARRIERS];
                        for z in sym.iter_mut() {
                            *z = Complex::new(rng.gauss(), rng.gauss());
                        }
                        sym[0] = Complex::ZERO;
                        sym
                    })
                    .collect();
                let mut batch = Vec::new();
                soft_demap_batch_into(&symbols, &gains, m, &mut batch);
                let mut per_symbol = Vec::new();
                let mut one = Vec::new();
                for sym in &symbols {
                    soft_demap_symbols_into(sym, &gains, m, &mut one);
                    per_symbol.extend_from_slice(&one);
                }
                assert_eq!(batch.len(), per_symbol.len(), "{m:?} n_sym={n_sym}");
                for (i, (a, b)) in batch.iter().zip(&per_symbol).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "{m:?} n_sym={n_sym} llr={i}");
                }
            }
        }
    }

    #[test]
    fn fused_demap_deinterleave_is_bit_identical() {
        // The fused scatter demapper must equal the two-pass pipeline
        // (batch demap, then per-symbol deinterleave) value for value at
        // every modulation: fusing only relocates writes, so each LLR's
        // bits are untouched.
        use freerider_coding::interleaver::Interleaver;
        let mut rng = Rng64::new(0xF05E);
        for m in [
            Modulation::Bpsk,
            Modulation::Qpsk,
            Modulation::Qam16,
            Modulation::Qam64,
        ] {
            let bpsc = m.bits_per_subcarrier();
            let n_cbps = crate::N_DATA_CARRIERS * bpsc;
            let il = Interleaver::new(n_cbps, bpsc);
            for n_sym in [0usize, 1, 5, 12] {
                let mut gains = [0.0f64; crate::N_DATA_CARRIERS];
                for g in gains.iter_mut() {
                    *g = rng.gauss();
                }
                let symbols: Vec<[Complex; crate::N_DATA_CARRIERS]> = (0..n_sym)
                    .map(|_| {
                        let mut sym = [Complex::ZERO; crate::N_DATA_CARRIERS];
                        for z in sym.iter_mut() {
                            *z = Complex::new(rng.gauss(), rng.gauss());
                        }
                        sym
                    })
                    .collect();
                let mut fused = Vec::new();
                soft_demap_deinterleave_batch_into(
                    &symbols,
                    &gains,
                    m,
                    il.inverse_map(),
                    &mut fused,
                );
                let mut interleaved = Vec::new();
                soft_demap_batch_into(&symbols, &gains, m, &mut interleaved);
                let mut two_pass = vec![0.0f64; n_sym * n_cbps];
                for n in 0..n_sym {
                    il.deinterleave_symbol_soft_into(
                        &interleaved[n * n_cbps..(n + 1) * n_cbps],
                        &mut two_pass[n * n_cbps..(n + 1) * n_cbps],
                    );
                }
                assert_eq!(fused.len(), two_pass.len(), "{m:?} n_sym={n_sym}");
                for (i, (a, b)) in fused.iter().zip(&two_pass).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "{m:?} n_sym={n_sym} llr={i}");
                }
            }
        }
    }
}
