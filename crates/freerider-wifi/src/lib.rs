//! # freerider-wifi
//!
//! A complete software 802.11g (OFDM / "ERP-OFDM") physical layer:
//! transmitter and receiver operating on complex baseband IQ at 20 Msps.
//!
//! This is the excitation-and-reception substrate for FreeRider's WiFi
//! experiments (paper §2.3.1, §3.2.1, §4.2.1). The PHY is implemented per
//! IEEE 802.11-2012 clause 18:
//!
//! * [`rates::Mcs`] — the eight 20 MHz OFDM rates (6–54 Mbps).
//! * [`mapping`] — BPSK/QPSK/16-QAM/64-QAM constellation mapping.
//! * [`ofdm`] — 64-subcarrier symbol assembly (48 data + 4 pilots),
//!   IFFT and cyclic prefix.
//! * [`preamble`] — the short (STF) and long (LTF) training fields.
//! * [`plcp`] — the SIGNAL field.
//! * [`frame`] — a minimal MPDU (header + payload + FCS) wrapper.
//! * [`tx::Transmitter`] / [`rx::Receiver`] — the full chains.
//!
//! ## Receiver behaviour FreeRider depends on
//!
//! [`rx::RxConfig::phase_tracking`] defaults to
//! [`rx::PhaseTracking::DecisionDirected`], mirroring the Broadcom
//! BCM43xx receivers used in the paper (§3.2.1: "many WiFi chips … do not
//! use pilot tones for phase error correction"): residual carrier drift
//! is tracked blindly to π rotations, so the tag's phase flips survive.
//! [`rx::PhaseTracking::FullPilot`] would rotate away exactly the phase
//! offset the tag uses to carry its data — an ablation the bench suite
//! measures (`ablation-pilots`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod mapping;
pub mod ofdm;
pub mod plcp;
pub mod preamble;
pub mod rates;
pub mod rx;
pub mod tx;

pub use frame::Mpdu;
pub use rates::Mcs;
pub use rx::{PhaseTracking, Receiver, RxConfig, RxError, RxPacket, RxScratch};
pub use tx::{Transmitter, TxConfig};

/// Baseband sample rate of the 20 MHz OFDM PHY, samples/second.
pub const SAMPLE_RATE: f64 = 20e6;

/// OFDM symbol duration in samples (3.2 µs useful + 0.8 µs cyclic prefix).
pub const SYMBOL_LEN: usize = 80;

/// FFT size (number of subcarriers).
pub const FFT_SIZE: usize = 64;

/// Cyclic prefix length in samples.
pub const CP_LEN: usize = 16;

/// Number of data subcarriers per symbol.
pub const N_DATA_CARRIERS: usize = 48;

/// Duration of the PLCP preamble (STF + LTF) in samples (16 µs).
pub const PREAMBLE_LEN: usize = 320;
