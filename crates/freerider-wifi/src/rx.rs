//! The 802.11g OFDM receiver.
//!
//! Packet detection (Schmidl–Cox STF trigger + LTF fine timing), fine CFO
//! estimation and correction, per-subcarrier channel estimation from the
//! two long training symbols, equalisation, decision-directed phase
//! tracking, channel-weighted soft demapping, deinterleaving, soft
//! Viterbi decoding and descrambling.
//!
//! Two behaviours matter for FreeRider:
//!
//! 1. **Pilot phase tracking is off by default** — matching the Broadcom
//!    BCM43xx receiver used in the paper (§3.2.1). With tracking on, the
//!    common phase offset the tag injects is rotated away and the tag data
//!    is destroyed; the workspace's `ablation-pilots` bench measures this.
//! 2. **Monitor mode**: frames whose FCS fails are still returned (with
//!    `fcs_valid == false`) because the backscatter copy of a frame has, by
//!    design, a different bit stream than the excitation frame and hence a
//!    broken FCS. This mirrors §3.1's use of `tcpdump` on bad-checksum
//!    packets.
//!
//! The hot path is allocation-free in steady state: [`Receiver::receive_with`]
//! threads an [`RxScratch`] arena through detection and decode, so a warm
//! receiver touches no allocator at all for same-shaped packets. The
//! convenience [`Receiver::receive`] / [`Receiver::receive_all`] wrappers
//! build a scratch internally and are bit-identical to the `_with` forms.

use crate::mapping::{soft_demap_deinterleave_batch_into, soft_demap_symbols_into};
use crate::ofdm::{
    carrier_to_bin, demodulate_symbol, pilot_polarity, DATA_CARRIERS, PILOT_CARRIERS, PILOT_VALUES,
};
use crate::plcp::{Signal, SignalError};
use crate::preamble::{long_symbol, ltf_carrier};
use crate::rates::{Mcs, Modulation};
use crate::{CP_LEN, FFT_SIZE, N_DATA_CARRIERS, PREAMBLE_LEN, SYMBOL_LEN};
use freerider_coding::convolutional::{viterbi_decode_soft_scratch, CodeRate, ViterbiScratch};
use freerider_coding::interleaver::Interleaver;
use freerider_coding::scrambler::Scrambler;
use freerider_dsp::{bits, corr, db, Complex};
use freerider_telemetry as telemetry;
use freerider_telemetry::{profile, trace};

/// How the receiver tracks residual carrier phase across DATA symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PhaseTracking {
    /// No tracking at all: raw equalised symbols. Only viable for short
    /// packets at high SNR; kept for diagnostics and for experiments that
    /// need non-symmetry phase offsets preserved exactly.
    Off,
    /// Decision-directed tracking (the default): drift is followed modulo
    /// the constellation's rotational symmetry — the 48-carrier squaring
    /// estimator (mod π) on BPSK, the fourth-power estimator (mod π/2) on
    /// QPSK, pilots (mod π) on QAM — so a tag's codeword-translating
    /// rotations pass through untouched. The BCM43xx-like behaviour
    /// FreeRider relies on (§3.2.1).
    #[default]
    DecisionDirected,
    /// Full pilot-based common-phase correction: a receiver that does use
    /// its pilots for phase correction. This erases the tag's phase
    /// offsets (the `ablation-pilots` experiment).
    FullPilot,
}

/// Receiver configuration.
#[derive(Debug, Clone, Copy)]
pub struct RxConfig {
    /// Schmidl–Cox STF plateau threshold, in `[0, 1]`. The metric settles
    /// at ≈ Pₛ/(Pₛ+Pₙ), so 0.45 triggers down to ≈ −1 dB SNR; the
    /// sensitivity gate below is what actually bounds range.
    pub detection_threshold: f64,
    /// Residual carrier-phase tracking policy.
    pub phase_tracking: PhaseTracking,
    /// Minimum preamble RSSI (dBm) for the synchroniser to lock. Models the
    /// header-detection sensitivity that gates FreeRider's range (§4.2.1:
    /// "if the header itself is not decoded, then we observe packet loss").
    pub sensitivity_dbm: f64,
}

impl Default for RxConfig {
    fn default() -> Self {
        RxConfig {
            detection_threshold: 0.45,
            phase_tracking: PhaseTracking::default(),
            sensitivity_dbm: -94.0,
        }
    }
}

/// Errors from [`Receiver::receive`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxError {
    /// No preamble found above the detection threshold / sensitivity.
    NoPreamble,
    /// The SIGNAL field failed to decode.
    BadSignal(SignalError),
    /// The buffer ends before the PPDU does.
    Truncated,
}

impl std::fmt::Display for RxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RxError::NoPreamble => write!(f, "no preamble detected"),
            RxError::BadSignal(e) => write!(f, "SIGNAL field invalid: {e}"),
            RxError::Truncated => write!(f, "buffer truncated mid-PPDU"),
        }
    }
}

impl std::error::Error for RxError {}

/// A successfully received PPDU.
#[derive(Debug, Clone)]
pub struct RxPacket {
    /// Decoded SIGNAL field (rate + length).
    pub signal: Signal,
    /// The PSDU bytes.
    pub psdu: Vec<u8>,
    /// Whether the PSDU's trailing CRC-32 FCS checks out.
    pub fcs_valid: bool,
    /// All descrambled DATA-field bits (SERVICE + PSDU + tail + pad),
    /// exactly `n_symbols × N_DBPS` long. This is the stream the FreeRider
    /// XOR decoder compares between the two receivers; keeping the symbol
    /// alignment lets the decoder majority-vote per tag bit.
    pub data_bits: Vec<u8>,
    /// Equalised data-carrier constellation points per DATA symbol
    /// (48 each), before demapping — used by the quaternary phase decoder
    /// and for diagnostics.
    pub equalized: Vec<[Complex; N_DATA_CARRIERS]>,
    /// Preamble-region RSSI in dBm.
    pub rssi_dbm: f64,
    /// Estimated carrier frequency offset, cycles/sample.
    pub cfo: f64,
    /// Sample index (into the receive buffer) of the preamble start.
    pub start: usize,
    /// Sample index one past the PPDU end.
    pub end: usize,
}

impl Default for RxPacket {
    fn default() -> Self {
        RxPacket {
            signal: Signal {
                rate: Mcs::Bpsk12,
                length: 0,
            },
            psdu: Vec::new(),
            fcs_valid: false,
            data_bits: Vec::new(),
            equalized: Vec::new(),
            rssi_dbm: f64::NEG_INFINITY,
            cfo: 0.0,
            start: 0,
            end: 0,
        }
    }
}

/// Reusable per-receiver working memory.
///
/// Every buffer the receive pipeline needs lives here; after the first
/// packet warms the capacities, subsequent same-shaped packets decode
/// without a single heap allocation. One scratch per worker thread — the
/// sweep executor threads one through its per-worker state.
#[derive(Debug, Clone)]
pub struct RxScratch {
    /// Per-sample lag-16 delay products `s[j]·conj(s[j+16])`.
    products: Vec<Complex>,
    /// Per-sample delayed energies `|s[j+16]|²`.
    energies: Vec<f64>,
    /// Lazily-extended Schmidl–Cox metric (prefix actually inspected).
    dc: Vec<f64>,
    /// LTF fine-timing correlation window.
    ltf_corr: Vec<f64>,
    /// CFO-corrected samples from LTF1 onward.
    corrected: Vec<Complex>,
    /// Per-data-carrier channel power gains.
    gains: Vec<f64>,
    /// Packed CP-stripped DATA symbols (`n_sym × 64`), transformed to the
    /// frequency domain in place by one batch FFT call.
    sym_freq: Vec<Complex>,
    /// Raw equalised DATA points, SoA real plane, carrier-major
    /// (`[i·n_sym + n]`): each carrier's channel inverse is hoisted once
    /// and applied across all symbols in a straight vectorisable sweep.
    eq_re: Vec<f64>,
    /// Raw equalised DATA points, SoA imaginary plane (same layout).
    eq_im: Vec<f64>,
    /// Per-symbol decision-directed phase-estimator accumulator, real
    /// plane (the carrier-ordered `Σ z²g²` / `Σ z⁴g⁴` partial sums,
    /// batched across symbols).
    est_re: Vec<f64>,
    /// Imaginary plane of the estimator accumulator.
    est_im: Vec<f64>,
    /// Per-symbol raw phase estimates derived from the accumulator.
    raw_phase: Vec<f64>,
    /// Soft demapper output (whole DATA field in the batched path).
    llrs: Vec<f64>,
    /// Deinterleaved SIGNAL-field LLRs.
    sig_coded: Vec<f64>,
    /// Deinterleaved LLRs for the whole DATA field.
    coded_llrs: Vec<f64>,
    /// SIGNAL-field interleaver (always 48×1).
    il_signal: Interleaver,
    /// DATA-field interleaver, rebuilt only when the rate changes.
    il_data: Interleaver,
    /// Viterbi decoder working memory.
    viterbi: ViterbiScratch,
    /// The decoded packet (buffers reused across packets).
    packet: RxPacket,
}

impl Default for RxScratch {
    fn default() -> Self {
        RxScratch {
            products: Vec::new(),
            energies: Vec::new(),
            dc: Vec::new(),
            ltf_corr: Vec::new(),
            corrected: Vec::new(),
            gains: Vec::new(),
            sym_freq: Vec::new(),
            eq_re: Vec::new(),
            eq_im: Vec::new(),
            est_re: Vec::new(),
            est_im: Vec::new(),
            raw_phase: Vec::new(),
            llrs: Vec::new(),
            sig_coded: Vec::new(),
            coded_llrs: Vec::new(),
            il_signal: Interleaver::new(48, 1),
            il_data: Interleaver::new(48, 1),
            viterbi: ViterbiScratch::new(),
            packet: RxPacket::default(),
        }
    }
}

impl RxScratch {
    /// Creates an empty scratch arena.
    pub fn new() -> Self {
        Self::default()
    }
}

thread_local! {
    /// Per-thread scratch backing [`Receiver::receive`], so the convenience
    /// API decodes at the same warm-buffer speed as an explicit
    /// [`Receiver::receive_with`] loop. The arena stabilises at the largest
    /// packet decoded on this thread (~400 KB for a 1000-byte PSDU) and is
    /// released at thread exit.
    static THREAD_SCRATCH: std::cell::RefCell<RxScratch> =
        std::cell::RefCell::new(RxScratch::new());
}

/// Extends the lazily-evaluated delay-correlate metric so index `upto` is
/// valid. Each value sums the same 64 products in the same order as the
/// eager [`corr::delay_correlate`], so the prefix computed here is
/// bit-identical to the corresponding prefix of the full metric — the
/// plateau search just never pays for the samples it does not look at.
///
/// The SoA product/energy planes feeding the metric are themselves
/// extended lazily (element-wise, so the prefix is bit-identical to an
/// eager whole-buffer pass): a packet that locks early never pays the
/// per-sample delay products for the rest of the buffer.
// lint: hot-path
fn dc_ensure(
    dc: &mut Vec<f64>,
    products: &mut Vec<Complex>,
    energies: &mut Vec<f64>,
    samples: &[Complex],
    upto: usize,
) {
    let need = upto + 64; // products[n..n+64] feed metric value n
    if products.len() < need {
        let start = products.len();
        products.extend(
            samples[start..need]
                .iter()
                .zip(&samples[start + 16..need + 16])
                .map(|(&a, &b)| a * b.conj()),
        );
        energies.extend(samples[start + 16..need + 16].iter().map(|z| z.norm_sqr()));
    }
    while dc.len() <= upto {
        let n = dc.len();
        let mut acc = Complex::ZERO;
        let mut energy = 0.0;
        for k in 0..64 {
            acc += products[n + k];
            energy += energies[n + k];
        }
        dc.push(if energy > 1e-30 {
            acc.abs() / energy
        } else {
            0.0
        });
    }
}

/// The 802.11g OFDM receiver.
#[derive(Debug, Clone)]
pub struct Receiver {
    config: RxConfig,
    ltf_ref: Vec<Complex>,
}

impl Receiver {
    /// Creates a receiver.
    pub fn new(config: RxConfig) -> Self {
        Receiver {
            config,
            ltf_ref: long_symbol(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RxConfig {
        &self.config
    }

    /// Attempts to receive the first decodable PPDU in `samples`.
    ///
    /// A failed decode (spurious sync, corrupted header, truncation) does
    /// not end the hunt: the receiver resumes scanning past the failed
    /// lock, as real hardware does. The *first* failure is reported if
    /// nothing in the buffer decodes.
    ///
    /// Decodes through a per-thread [`RxScratch`], so repeated calls reuse
    /// the same working buffers instead of re-growing ~400 KB of arena per
    /// packet; only the returned packet's own buffers are freshly
    /// allocated. Results are bit-identical to [`Receiver::receive_with`].
    pub fn receive(&self, samples: &[Complex]) -> Result<RxPacket, RxError> {
        THREAD_SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            self.receive_with(samples, &mut scratch)?;
            Ok(std::mem::take(&mut scratch.packet))
        })
    }

    /// [`Receiver::receive`] into a caller-provided [`RxScratch`]: the
    /// allocation-free form for hot receive loops. The decoded packet is
    /// returned by reference into the scratch; it stays valid until the
    /// next `_with` call reuses the arena. Results are bit-identical to
    /// [`Receiver::receive`].
    pub fn receive_with<'s>(
        &self,
        samples: &[Complex],
        scratch: &'s mut RxScratch,
    ) -> Result<&'s RxPacket, RxError> {
        let _root = profile::scope("wifi.rx");
        profile::items(samples.len() as u64);
        let mut cursor = 0usize;
        let mut first_err: Option<RxError> = None;
        let mut found = false;
        while cursor + PREAMBLE_LEN + SYMBOL_LEN <= samples.len() {
            match self.detect_with(&samples[cursor..], scratch) {
                Ok(ltf1) => match self.decode_at_with(&samples[cursor..], ltf1, scratch) {
                    Ok(()) => {
                        scratch.packet.start += cursor;
                        scratch.packet.end += cursor;
                        found = true;
                        break;
                    }
                    Err(e) => {
                        first_err.get_or_insert(e);
                        cursor += ltf1 + FFT_SIZE;
                    }
                },
                Err(e) => {
                    first_err.get_or_insert(e);
                    break;
                }
            }
        }
        if found {
            Ok(&scratch.packet)
        } else {
            Err(first_err.unwrap_or(RxError::NoPreamble))
        }
    }

    /// Receives every decodable PPDU in the buffer, skipping undecodable
    /// regions.
    pub fn receive_all(&self, samples: &[Complex]) -> Vec<RxPacket> {
        let _root = profile::scope("wifi.rx");
        profile::items(samples.len() as u64);
        let mut scratch = RxScratch::new();
        let mut out = Vec::new();
        let mut cursor = 0usize;
        while cursor + PREAMBLE_LEN + SYMBOL_LEN < samples.len() {
            match self.detect_with(&samples[cursor..], &mut scratch) {
                Ok(ltf1) => match self.decode_at_with(&samples[cursor..], ltf1, &mut scratch) {
                    Ok(()) => {
                        scratch.packet.start += cursor;
                        scratch.packet.end += cursor;
                        let pkt = std::mem::take(&mut scratch.packet);
                        cursor = pkt.end;
                        out.push(pkt);
                    }
                    Err(_) => {
                        // Skip past this false/failed sync point.
                        cursor += ltf1 + FFT_SIZE;
                    }
                },
                Err(_) => break,
            }
        }
        out
    }

    /// Finds the sample index of the first LTF long symbol.
    ///
    /// Detection is the standard two-stage 802.11 design:
    ///
    /// 1. **Schmidl–Cox STF detection** — the delay-and-correlate metric
    ///    at lag 16 plateaus near `Pₛ/(Pₛ+Pₙ)` over the short training
    ///    field for *any* multipath channel (periodicity survives
    ///    convolution), giving a channel-immune packet trigger *and* an
    ///    SNR estimate for the sensitivity gate. Gating on estimated
    ///    signal power (not signal+noise, which never drops below the
    ///    floor) is what reproduces the paper's ≈ −94 dBm
    ///    header-detection cliff.
    /// 2. **LTF cross-correlation** for fine timing within the window the
    ///    STF trigger implies.
    ///
    /// The metric is evaluated *lazily*: the per-sample delay products are
    /// precomputed in O(n), but the 64-term windowed sums are only formed
    /// for the prefix the plateau search actually inspects. A packet near
    /// the start of the buffer locks after a few hundred metric values
    /// instead of paying the full 64× sweep.
    fn detect_with(&self, samples: &[Complex], scratch: &mut RxScratch) -> Result<usize, RxError> {
        telemetry::count("wifi.rx.detect.calls");
        let _span = telemetry::span("wifi.rx.detect");
        let _stage = trace::stage("wifi.rx.detect");
        let _prof = profile::scope("detect");
        if samples.len() < PREAMBLE_LEN + SYMBOL_LEN {
            return Err(RxError::NoPreamble);
        }
        // Delay products and energies shared by every metric value —
        // extended lazily alongside the metric itself (see `dc_ensure`).
        scratch.products.clear();
        scratch.energies.clear();
        scratch.dc.clear();
        let n_out = samples.len() - 16 - 64 + 1;
        let thr = self.config.detection_threshold;
        const SUSTAIN: usize = 40;
        let mut p = 0usize;
        'outer: while p + SUSTAIN < n_out {
            dc_ensure(
                &mut scratch.dc,
                &mut scratch.products,
                &mut scratch.energies,
                samples,
                p,
            );
            if scratch.dc[p] < thr {
                p += 1;
                continue;
            }
            dc_ensure(
                &mut scratch.dc,
                &mut scratch.products,
                &mut scratch.energies,
                samples,
                p + SUSTAIN - 1,
            );
            for k in 0..SUSTAIN {
                if scratch.dc[p + k] < thr {
                    p += k + 1;
                    continue 'outer;
                }
            }
            // STF plateau found at p. Sensitivity gate: the plateau level
            // m ≈ Pₛ/(Pₛ+Pₙ), so estimated signal = measured + 10·log₁₀ m.
            let m: f64 = scratch.dc[p..p + SUSTAIN].iter().sum::<f64>() / SUSTAIN as f64;
            let span_end = (p + 160).min(samples.len());
            let measured = db::mean_power_dbm(&samples[p..span_end]);
            telemetry::count("wifi.rx.detect.stf_plateaus");
            let signal_est = measured + 10.0 * m.clamp(1e-6, 1.0).log10();
            if signal_est < self.config.sensitivity_dbm {
                telemetry::count("wifi.rx.detect.sensitivity_drops");
                // Skip this burst and keep hunting (a later, stronger
                // packet may still be decodable).
                p += SUSTAIN;
                continue;
            }
            // Fine timing: LTF cross-correlation in the window the STF
            // start implies. The plateau can trigger up to ~64 samples
            // before the true packet start (partial-overlap windows
            // normalise to high values) or ~40 after (noise dips), so
            // LTF1 lies in [p+128, p+256]; the window is sized so the
            // LTF2 partner at +64 is always inside it too.
            let win_lo = p + 100;
            let win_hi = (p + 420).min(samples.len());
            if win_hi <= win_lo + 2 * FFT_SIZE {
                return Err(RxError::NoPreamble);
            }
            corr::normalized_correlation_into(
                &samples[win_lo..win_hi],
                &self.ltf_ref,
                &mut scratch.ltf_corr,
            );
            let c = &scratch.ltf_corr;
            // The LTF appears twice, 64 samples apart: score candidate
            // positions by the *pair* so we lock to LTF1, not LTF2.
            let mut best = (0usize, f64::MIN);
            for (i, &v) in c.iter().enumerate() {
                if i + FFT_SIZE < c.len() {
                    let pair = v + c[i + FFT_SIZE];
                    if pair > best.1 {
                        best = (i, pair);
                    }
                }
            }
            // Multipath disperses the peak but a real preamble keeps a
            // dominant component; require a modest floor to reject noise.
            if best.1 < 0.55 {
                telemetry::count("wifi.rx.detect.ltf_rejects");
                p += SUSTAIN;
                continue;
            }
            telemetry::count("wifi.rx.detect.locks");
            // Timing advance: lock a few samples *early*, inside the
            // cyclic prefix. If the correlator locked onto a delayed
            // multipath component, a late FFT window would straddle the
            // next symbol (inter-symbol interference the CP cannot
            // remove); backing off keeps the whole delay spread inside
            // the CP. The constant phase ramp this introduces is absorbed
            // by the channel estimate.
            const TIMING_ADVANCE: usize = 4;
            return Ok((win_lo + best.0).saturating_sub(TIMING_ADVANCE));
        }
        Err(RxError::NoPreamble)
    }

    /// Decodes a PPDU whose first long training symbol starts at `ltf1`,
    /// filling `scratch.packet` on success.
    fn decode_at_with(
        &self,
        samples: &[Complex],
        ltf1: usize,
        scratch: &mut RxScratch,
    ) -> Result<(), RxError> {
        let _span = telemetry::span("wifi.rx.decode");
        let _stage = trace::stage("wifi.rx.decode");
        let _prof = profile::scope("decode");
        if ltf1 + 2 * FFT_SIZE + SYMBOL_LEN > samples.len() {
            telemetry::count("wifi.rx.truncated");
            return Err(RxError::Truncated);
        }
        // --- Fine CFO from the repeated long symbols. ---
        let prof_cfo = profile::scope("cfo");
        let mut acc = Complex::ZERO;
        for k in 0..FFT_SIZE {
            acc += samples[ltf1 + FFT_SIZE + k] * samples[ltf1 + k].conj();
        }
        let cfo = acc.arg() / (2.0 * std::f64::consts::PI * FFT_SIZE as f64);
        telemetry::count("wifi.rx.cfo.estimates");
        // |CFO| in parts-per-billion of the sample rate: integer so it can
        // live in the deterministic histogram section.
        telemetry::record("wifi.rx.cfo.abs_ppb", (cfo.abs() * 1e9).round() as u64);
        trace::value_f64("wifi.rx.cfo", cfo);

        // CFO-correct lazily: each corrected sample depends only on its own
        // index, so correcting just the LTF + SIGNAL prefix here yields the
        // same values as eagerly correcting the whole buffer. The DATA
        // symbols are corrected on the fly as they are packed for the batch
        // FFT (see the equalise stage below), which skips `Complex::cis`
        // for cyclic prefixes and trailing samples the packet never uses.
        scratch.corrected.clear();
        let avail = samples.len() - ltf1;
        let need_sig = (2 * FFT_SIZE + SYMBOL_LEN).min(avail);
        scratch.corrected.extend(
            samples[ltf1..ltf1 + need_sig]
                .iter()
                .enumerate()
                .map(|(n, &x)| x * Complex::cis(-2.0 * std::f64::consts::PI * cfo * n as f64)),
        );
        drop(prof_cfo);

        // --- Channel estimation from the two long symbols. ---
        let prof_chanest = profile::scope("chanest");
        let mut h = [Complex::ZERO; FFT_SIZE];
        for rep in 0..2 {
            let mut f = [Complex::ZERO; FFT_SIZE];
            f.copy_from_slice(&scratch.corrected[rep * FFT_SIZE..(rep + 1) * FFT_SIZE]);
            freerider_dsp::fft::fft64(&mut f);
            for c in -26..=26i32 {
                let l = ltf_carrier(c);
                if l != 0.0 {
                    let bin = carrier_to_bin(c);
                    // The TX scales symbols by √(64²/52); fold that into H.
                    h[bin] += f[bin].scale(0.5 / l);
                }
            }
        }

        let rssi_dbm = {
            let pre_start = ltf1.saturating_sub(192);
            db::mean_power_dbm(&samples[pre_start..ltf1 + 2 * FFT_SIZE])
        };

        telemetry::count("wifi.rx.chanest.estimates");
        drop(prof_chanest);

        // --- SIGNAL symbol. ---
        let prof_signal = profile::scope("signal");
        if avail - 2 * FFT_SIZE < SYMBOL_LEN {
            telemetry::count("wifi.rx.truncated");
            return Err(RxError::Truncated);
        }
        // Decision-directed residual-CFO tracker: the one-shot LTF CFO
        // estimate leaves a residual that accumulates to radians over a
        // long packet, so every real receiver keeps tracking. The BCM43xx
        // class of receivers the paper relies on does this blindly to the
        // data ("do not use pilot tones for phase error correction"),
        // which makes it blind to rotations by the constellation symmetry
        // — exactly why a FreeRider tag's Δθ = π flips survive. We model
        // it with the classic *squaring estimator* for BPSK symbols
        // (`arg Σ z² / 2` strips BPSK modulation and yields the common
        // phase mod π, averaged over all 48 data carriers), tracked
        // differentially so drift is removed while π steps pass through.
        let mut prev_raw;
        let mut cum_drift = 0.0f64;
        let wrap_pi = |x: f64| x - std::f64::consts::PI * (x / std::f64::consts::PI).round();
        // Per-carrier channel power gains (needed both for the squaring
        // estimator's matched weighting and for soft demapping).
        scratch.gains.clear();
        scratch.gains.extend(
            DATA_CARRIERS
                .iter()
                .map(|&c| h[carrier_to_bin(c)].norm_sqr()),
        );
        // Matched squaring estimator: z²·g² = r²·conj(H²), so deeply faded
        // carriers (whose equalised samples are amplified noise) are
        // weighted out instead of dominating through their squared noise —
        // without this, multipath at moderate SNR causes π cycle slips
        // that corrupt whole stretches of tag data.
        let squaring_phase = |points: &[Complex], gains: &[f64]| -> f64 {
            let acc: Complex = points
                .iter()
                .zip(gains.iter())
                .map(|(&z, &g)| z * z * (g * g))
                .sum();
            acc.arg() / 2.0
        };
        // The fourth-power analogue for QPSK (z⁴ strips QPSK modulation and
        // any multiple-of-π/2 tag rotation, yielding phase mod π/2; QPSK
        // points sit at odd multiples of 45°, so z⁴ lands at e^{jπ}·e^{j4δ}
        // and negating the accumulator removes that constant π bias) runs
        // batched across the whole DATA field — see the equalise stage.
        let wrap_half_pi =
            |x: f64| x - std::f64::consts::FRAC_PI_2 * (x / std::f64::consts::FRAC_PI_2).round();

        let mut sig_points_raw = [Complex::ZERO; N_DATA_CARRIERS];
        self.equalize_symbol_into(
            &scratch.corrected[2 * FFT_SIZE..2 * FFT_SIZE + SYMBOL_LEN],
            &h,
            0,
            &mut sig_points_raw,
        );
        let sig_phase = squaring_phase(&sig_points_raw, &scratch.gains);
        prev_raw = sig_phase;
        if self.config.phase_tracking != PhaseTracking::Off {
            cum_drift += wrap_pi(sig_phase);
        }
        let derot = Complex::cis(-cum_drift);
        let mut sig_points = [Complex::ZERO; N_DATA_CARRIERS];
        for (d, &s) in sig_points.iter_mut().zip(sig_points_raw.iter()) {
            *d = s * derot;
        }
        profile::work("demap.symbols", 1);
        soft_demap_symbols_into(
            &sig_points,
            &scratch.gains,
            Modulation::Bpsk,
            &mut scratch.llrs,
        );
        scratch.sig_coded.clear();
        scratch.sig_coded.resize(48, 0.0);
        scratch
            .il_signal
            .deinterleave_symbol_soft_into(&scratch.llrs, &mut scratch.sig_coded);
        let (sig_decoded, sig_metric) =
            viterbi_decode_soft_scratch(&scratch.sig_coded, CodeRate::Half, &mut scratch.viterbi);
        let sig_bits = sig_decoded.len();
        let mut sig24 = [0u8; 24];
        sig24.copy_from_slice(&sig_decoded[..24]);
        trace::value_f64("wifi.rx.signal.viterbi_metric", sig_metric);
        telemetry::count("wifi.rx.demap.symbols");
        telemetry::count("wifi.rx.deinterleave.symbols");
        telemetry::count("wifi.rx.viterbi.decodes");
        telemetry::count_n("wifi.rx.viterbi.bits", sig_bits as u64);
        let signal = Signal::decode(&sig24).map_err(|e| {
            telemetry::count("wifi.rx.signal.bad");
            telemetry::event!(Debug, "wifi.rx", "SIGNAL field rejected: {e:?}");
            trace::value_str("wifi.rx.signal", "bad");
            RxError::BadSignal(e)
        })?;
        telemetry::count("wifi.rx.signal.ok");
        drop(prof_signal);

        // --- DATA symbols: batch FFT → SoA equalise → batched demap. ---
        let rate = signal.rate;
        let n_sym = rate.data_symbols_for(signal.length);
        if avail - 2 * FFT_SIZE < SYMBOL_LEN * (1 + n_sym) {
            telemetry::count("wifi.rx.truncated");
            return Err(RxError::Truncated);
        }
        let prof_equalize = profile::scope("equalize");
        let n_cbps = rate.coded_bits_per_symbol();
        // The (N_CBPS, N_BPSC) pairs are 1:1 in 802.11g, so a matching
        // block size means the cached permutation is the right one.
        if scratch.il_data.block_size() != n_cbps {
            scratch.il_data = Interleaver::new(n_cbps, rate.modulation().bits_per_subcarrier());
        }
        telemetry::count_n("wifi.rx.equalize.symbols", n_sym as u64);
        telemetry::count_n("wifi.rx.fft.symbols", n_sym as u64);
        profile::work("equalize.subcarriers", (n_sym * N_DATA_CARRIERS) as u64);
        // Stage 1 — batch FFT: CFO-correct and pack every CP-stripped
        // symbol window, then transform the whole DATA field in one
        // planned batch call (the same 64-point butterfly network per
        // symbol as `fft64`). The CFO correction is folded into the pack:
        // each corrected sample depends only on its own absolute index, so
        // computing `x · e^{-j2πf·idx}` here yields bit-identical values
        // to the eager whole-buffer pass — while skipping `Complex::cis`
        // for the cyclic-prefix samples no downstream stage ever reads.
        scratch.sym_freq.clear();
        scratch.sym_freq.reserve(n_sym * FFT_SIZE);
        for n in 0..n_sym {
            let off = 2 * FFT_SIZE + SYMBOL_LEN * (1 + n) + CP_LEN;
            scratch.sym_freq.extend(
                samples[ltf1 + off..ltf1 + off + FFT_SIZE]
                    .iter()
                    .enumerate()
                    .map(|(k, &x)| {
                        let idx = off + k;
                        x * Complex::cis(-2.0 * std::f64::consts::PI * cfo * idx as f64)
                    }),
            );
        }
        freerider_dsp::fft::plan64()
            .run_batch(&mut scratch.sym_freq)
            // lint: allow(panic) — the batch length is n_sym·64 by construction
            .expect("batch length is a multiple of 64");
        // Stage 2 — SoA equalise: hoist each data carrier's channel inverse
        // once and sweep it across all symbols into carrier-major re/im
        // planes. Per-point arithmetic expands `carriers.data[i] / h[bin]`
        // exactly (`Complex::div`'s numerators and shared `norm_sqr`
        // denominator), so the planes are bit-identical to the per-symbol
        // path's points.
        scratch.eq_re.clear();
        scratch.eq_re.resize(n_sym * N_DATA_CARRIERS, 0.0);
        scratch.eq_im.clear();
        scratch.eq_im.resize(n_sym * N_DATA_CARRIERS, 0.0);
        for (i, &c) in DATA_CARRIERS.iter().enumerate() {
            let bin = carrier_to_bin(c);
            let hq = h[bin];
            let dn = hq.norm_sqr();
            let re_col = &mut scratch.eq_re[i * n_sym..(i + 1) * n_sym];
            let im_col = &mut scratch.eq_im[i * n_sym..(i + 1) * n_sym];
            if dn > 1e-12 {
                for n in 0..n_sym {
                    let s = scratch.sym_freq[n * FFT_SIZE + bin];
                    re_col[n] = (s.re * hq.re + s.im * hq.im) / dn;
                    im_col[n] = (s.im * hq.re - s.re * hq.im) / dn;
                }
            }
            // else: both planes stay 0.0 — the faded-carrier zero the
            // per-symbol path emits.
        }
        // Stage 3 — serial phase tracking (the cumulative-drift chain is
        // order-sensitive) over the raw planes, derotating into the
        // packet's equalised-symbol buffer.
        //
        // The decision-directed BPSK/QPSK estimators reduce each symbol's
        // 48 carriers independently, so their accumulators batch across
        // symbols first: one carrier-major sweep over the SoA planes
        // accumulates every symbol's `Σ z²g²` (or `Σ z⁴g⁴`) with the same
        // carrier-ordered additions the per-symbol closures perform,
        // leaving only the order-sensitive wrap/cumulate chain serial.
        let tracking = self.config.phase_tracking;
        let batch_est = tracking == PhaseTracking::DecisionDirected
            && matches!(rate.modulation(), Modulation::Bpsk | Modulation::Qpsk);
        // The 4-pilot common-phase estimate only steers FullPilot mode and
        // the decision-directed QAM fallback; skip it elsewhere.
        let need_pilot = tracking == PhaseTracking::FullPilot
            || (tracking == PhaseTracking::DecisionDirected && !batch_est);
        if batch_est {
            let quartic = rate.modulation() == Modulation::Qpsk;
            scratch.est_re.clear();
            scratch.est_re.resize(n_sym, 0.0);
            scratch.est_im.clear();
            scratch.est_im.resize(n_sym, 0.0);
            for i in 0..N_DATA_CARRIERS {
                let g = scratch.gains[i];
                let re_col = &scratch.eq_re[i * n_sym..(i + 1) * n_sym];
                let im_col = &scratch.eq_im[i * n_sym..(i + 1) * n_sym];
                let acc_re = &mut scratch.est_re[..n_sym];
                let acc_im = &mut scratch.est_im[..n_sym];
                if quartic {
                    let g4 = g * g * g * g;
                    for n in 0..n_sym {
                        let z = Complex::new(re_col[n], im_col[n]);
                        let z2 = z * z;
                        let t = z2 * z2 * g4;
                        acc_re[n] += t.re;
                        acc_im[n] += t.im;
                    }
                } else {
                    let g2 = g * g;
                    for n in 0..n_sym {
                        let z = Complex::new(re_col[n], im_col[n]);
                        let t = z * z * g2;
                        acc_re[n] += t.re;
                        acc_im[n] += t.im;
                    }
                }
            }
            scratch.raw_phase.clear();
            scratch.raw_phase.reserve(n_sym);
            if quartic {
                scratch.raw_phase.extend(
                    scratch
                        .est_re
                        .iter()
                        .zip(scratch.est_im.iter())
                        .map(|(&re, &im)| (-Complex::new(re, im)).arg() / 4.0),
                );
            } else {
                scratch.raw_phase.extend(
                    scratch
                        .est_re
                        .iter()
                        .zip(scratch.est_im.iter())
                        .map(|(&re, &im)| Complex::new(re, im).arg() / 2.0),
                );
            }
        }
        scratch.packet.equalized.clear();
        scratch.packet.equalized.reserve(n_sym);
        for n in 0..n_sym {
            let mut points_raw = [Complex::ZERO; N_DATA_CARRIERS];
            for (i, p) in points_raw.iter_mut().enumerate() {
                *p = Complex::new(scratch.eq_re[i * n_sym + n], scratch.eq_im[i * n_sym + n]);
            }
            // Pilot-derived common phase error, from the same frequency-
            // domain points the per-symbol demodulation extracted.
            let pilot_phase = if need_pilot {
                let polarity = pilot_polarity()[(n + 1) % 127];
                let mut pe_acc = Complex::ZERO;
                for (i, &c) in PILOT_CARRIERS.iter().enumerate() {
                    let expected = PILOT_VALUES[i] * polarity;
                    let bin = carrier_to_bin(c);
                    if h[bin].norm_sqr() > 1e-12 {
                        pe_acc += (scratch.sym_freq[n * FFT_SIZE + bin] / h[bin]).scale(expected);
                    }
                }
                pe_acc.arg()
            } else {
                0.0
            };
            let derot = match tracking {
                PhaseTracking::FullPilot => {
                    // Full pilot correction: erases the tag's phase
                    // offsets (the `ablation-pilots` behaviour).
                    Complex::cis(-pilot_phase)
                }
                PhaseTracking::DecisionDirected => {
                    // Differential decision-directed tracking: follow only
                    // phase increments modulo the constellation's rotational
                    // symmetry, so a tag's codeword-translating rotations
                    // pass through. BPSK symbols use the 48-carrier squaring
                    // estimator (mod π); QPSK uses the fourth-power
                    // estimator (mod π/2 — which also lets the quaternary
                    // Eq. 5 tag offsets through); QAM falls back to the 4
                    // BPSK pilots (mod π). The BPSK/QPSK raw estimates come
                    // precomputed from the batched carrier-major sweep.
                    let (raw, delta) = match rate.modulation() {
                        Modulation::Bpsk => {
                            let r = scratch.raw_phase[n];
                            (r, wrap_pi(r - prev_raw))
                        }
                        Modulation::Qpsk => {
                            let r = scratch.raw_phase[n];
                            (r, wrap_half_pi(r - prev_raw))
                        }
                        _ => {
                            let r = wrap_pi(pilot_phase);
                            (r, wrap_pi(r - prev_raw))
                        }
                    };
                    cum_drift += delta;
                    prev_raw = raw;
                    Complex::cis(-cum_drift)
                }
                PhaseTracking::Off => Complex::ONE,
            };
            let mut arr = [Complex::ZERO; N_DATA_CARRIERS];
            for (d, &s) in arr.iter_mut().zip(points_raw.iter()) {
                *d = s * derot;
            }
            scratch.packet.equalized.push(arr);
        }
        // Stage 4 — batched demap with the deinterleave scatter fused in:
        // each LLR is written straight to its deinterleaved slot, skipping
        // the interleaved-plane round trip (placement-only, bit-identical).
        profile::work("demap.symbols", n_sym as u64);
        soft_demap_deinterleave_batch_into(
            &scratch.packet.equalized,
            &scratch.gains,
            rate.modulation(),
            scratch.il_data.inverse_map(),
            &mut scratch.coded_llrs,
        );
        telemetry::count_n("wifi.rx.demap.symbols", n_sym as u64);
        telemetry::count_n("wifi.rx.deinterleave.symbols", n_sym as u64);
        drop(prof_equalize);
        let prof_viterbi = profile::scope("viterbi");
        let (scrambled, path_metric) = viterbi_decode_soft_scratch(
            &scratch.coded_llrs,
            rate.code_rate(),
            &mut scratch.viterbi,
        );
        trace::value_f64("wifi.rx.data.viterbi_metric", path_metric);
        telemetry::count("wifi.rx.viterbi.decodes");
        telemetry::count_n("wifi.rx.viterbi.bits", scrambled.len() as u64);
        drop(prof_viterbi);

        // Per-subcarrier EVM vs the nearest constellation point, averaged
        // over all DATA symbols. Only computed while a flight-recorder
        // packet scope is live — it is a diagnostic, not a decode input.
        if trace::in_packet() && !scratch.packet.equalized.is_empty() {
            let modulation = rate.modulation();
            let mut evm = [0.0f64; N_DATA_CARRIERS];
            for sym in &scratch.packet.equalized {
                for (k, &z) in sym.iter().enumerate() {
                    let ideal = crate::mapping::nearest_point(z, modulation);
                    evm[k] += (z - ideal).norm_sqr();
                }
            }
            for e in evm.iter_mut() {
                *e = (*e / scratch.packet.equalized.len() as f64).sqrt();
            }
            trace::value_f64s("wifi.rx.evm", &evm);
        }

        // --- Descramble, recovering the seed from the SERVICE bits. ---
        let prof_descramble = profile::scope("descramble");
        let data_bits = &mut scratch.packet.data_bits;
        data_bits.clear();
        data_bits.extend_from_slice(scrambled);
        if let Some(mut desc) = Scrambler::recover_seed(&data_bits[..7]) {
            for b in data_bits[..7].iter_mut() {
                *b = 0; // SERVICE bits descramble to 0
            }
            desc.scramble_in_place(&mut data_bits[7..]);
        }
        drop(prof_descramble);

        let prof_fcs = profile::scope("fcs");
        let psdu_bits = &scratch.packet.data_bits[16..16 + 8 * signal.length];
        bits::bits_to_bytes_lsb_into(psdu_bits, &mut scratch.packet.psdu);
        let fcs_valid = freerider_coding::crc::check_crc32(&scratch.packet.psdu);
        drop(prof_fcs);
        telemetry::count(if fcs_valid {
            "wifi.rx.fcs.ok"
        } else {
            "wifi.rx.fcs.bad"
        });
        trace::value_str("wifi.rx.fcs", if fcs_valid { "ok" } else { "bad" });
        telemetry::count("wifi.rx.packets");
        profile::bits(8 * signal.length as u64);
        telemetry::record("wifi.rx.psdu_bytes", signal.length as u64);
        telemetry::event!(
            Debug,
            "wifi.rx",
            "packet: {} B at {:?}, FCS {}",
            signal.length,
            rate,
            if fcs_valid { "ok" } else { "BAD" }
        );

        let end = ltf1 + 2 * FFT_SIZE + SYMBOL_LEN * (1 + n_sym);
        scratch.packet.signal = signal;
        scratch.packet.fcs_valid = fcs_valid;
        scratch.packet.rssi_dbm = rssi_dbm;
        scratch.packet.cfo = cfo;
        scratch.packet.start = ltf1.saturating_sub(192);
        scratch.packet.end = end;
        Ok(())
    }

    /// Equalises one 80-sample symbol into `points`; returns the raw
    /// common phase measured from the pilots. The data points are
    /// *uncorrected* — phase correction policy is applied by the caller
    /// (see `decode_at_with`).
    fn equalize_symbol_into(
        &self,
        symbol: &[Complex],
        h: &[Complex; FFT_SIZE],
        symbol_index: usize,
        points: &mut [Complex; N_DATA_CARRIERS],
    ) -> f64 {
        debug_assert_eq!(symbol.len(), SYMBOL_LEN);
        telemetry::count("wifi.rx.equalize.symbols");
        telemetry::count("wifi.rx.fft.symbols");
        profile::work("equalize.subcarriers", N_DATA_CARRIERS as u64);
        let carriers = demodulate_symbol(&symbol[..SYMBOL_LEN]);
        let polarity = pilot_polarity()[symbol_index % 127];
        // Pilot-derived common phase error.
        let mut pe_acc = Complex::ZERO;
        for (i, &c) in PILOT_CARRIERS.iter().enumerate() {
            let expected = PILOT_VALUES[i] * polarity;
            let bin = carrier_to_bin(c);
            if h[bin].norm_sqr() > 1e-12 {
                pe_acc += (carriers.pilots[i] / h[bin]).scale(expected);
            }
        }
        let phase_err = pe_acc.arg();
        for (i, &c) in DATA_CARRIERS.iter().enumerate() {
            let bin = carrier_to_bin(c);
            points[i] = if h[bin].norm_sqr() > 1e-12 {
                carriers.data[i] / h[bin]
            } else {
                Complex::ZERO
            };
        }
        phase_err
    }
}

/// Helper: number of DATA symbols for a decoded packet — re-exported for
/// XOR-decoder alignment.
pub fn data_symbols(signal: &Signal) -> usize {
    signal.rate.data_symbols_for(signal.length)
}

#[allow(unused_imports)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::{Transmitter, TxConfig};
    use crate::Mcs;
    use freerider_dsp::noise::NoiseSource;

    fn loopback(
        rate: Mcs,
        payload: &[u8],
        noise_power: f64,
        seed: u64,
    ) -> Result<RxPacket, RxError> {
        let tx = Transmitter::new(TxConfig {
            rate,
            ..TxConfig::default()
        });
        let mut wave = tx.transmit(payload).unwrap();
        // Surround with silence so detection has to find the packet.
        let mut buf = vec![Complex::ZERO; 150];
        buf.append(&mut wave);
        buf.extend(vec![Complex::ZERO; 150]);
        if noise_power > 0.0 {
            NoiseSource::new(seed, noise_power).add_to(&mut buf);
        }
        let rx = Receiver::new(RxConfig {
            sensitivity_dbm: -200.0,
            ..RxConfig::default()
        });
        rx.receive(&buf)
    }

    #[test]
    fn noiseless_loopback_all_rates() {
        let payload: Vec<u8> = (0..=200u8).collect();
        let mut framed = payload.clone();
        freerider_coding::crc::append_crc32(&mut framed);
        for rate in Mcs::ALL {
            let pkt = loopback(rate, &framed, 0.0, 0).unwrap_or_else(|e| panic!("{rate:?}: {e}"));
            assert_eq!(pkt.signal.rate, rate);
            assert_eq!(pkt.signal.length, framed.len());
            assert_eq!(pkt.psdu, framed, "{rate:?}");
            assert!(pkt.fcs_valid, "{rate:?}");
        }
    }

    #[test]
    fn loopback_with_moderate_noise() {
        // 20 dB SNR: every rate should survive a short frame.
        let mut framed = vec![0xC3u8; 80];
        freerider_coding::crc::append_crc32(&mut framed);
        for (i, rate) in [Mcs::Bpsk12, Mcs::Qpsk12, Mcs::Qam16Half]
            .iter()
            .enumerate()
        {
            let pkt = loopback(*rate, &framed, 0.01, i as u64).unwrap();
            assert_eq!(pkt.psdu, framed, "{rate:?}");
            assert!(pkt.fcs_valid);
        }
    }

    #[test]
    fn low_snr_bpsk_still_decodes() {
        // 7 dB SNR at 6 Mbps: rate-1/2 BPSK should still get through.
        let mut framed = vec![0x11u8; 60];
        freerider_coding::crc::append_crc32(&mut framed);
        let pkt = loopback(Mcs::Bpsk12, &framed, 0.2, 3).unwrap();
        assert_eq!(pkt.psdu, framed);
    }

    #[test]
    fn noise_only_yields_no_preamble() {
        let buf = NoiseSource::new(9, 1.0).take(4000);
        let rx = Receiver::new(RxConfig {
            sensitivity_dbm: -200.0,
            ..RxConfig::default()
        });
        assert_eq!(rx.receive(&buf).unwrap_err(), RxError::NoPreamble);
    }

    #[test]
    fn truncated_packet_reports_truncated() {
        let tx = Transmitter::new(TxConfig::default());
        let wave = tx.transmit(&[0u8; 500]).unwrap();
        let cut = &wave[..wave.len() / 2];
        let rx = Receiver::new(RxConfig {
            sensitivity_dbm: -200.0,
            ..RxConfig::default()
        });
        assert_eq!(rx.receive(cut).unwrap_err(), RxError::Truncated);
    }

    #[test]
    fn sensitivity_gate_drops_weak_packets() {
        let tx = Transmitter::new(TxConfig::default());
        let wave = tx.transmit(&[7u8; 50]).unwrap();
        // Scale to −97 dBm — below the default −94 dBm sensitivity.
        let weak: Vec<Complex> = wave
            .iter()
            .map(|&z| z * freerider_dsp::db::field_scale(-97.0))
            .collect();
        let rx = Receiver::new(RxConfig::default());
        assert_eq!(rx.receive(&weak).unwrap_err(), RxError::NoPreamble);
    }

    #[test]
    fn cfo_is_estimated_and_corrected() {
        let tx = Transmitter::new(TxConfig::default());
        let mut framed = vec![0x3Cu8; 100];
        freerider_coding::crc::append_crc32(&mut framed);
        let wave = tx.transmit(&framed).unwrap();
        let f = 30e3 / 20e6; // 30 kHz CFO
        let shifted: Vec<Complex> = wave
            .iter()
            .enumerate()
            .map(|(n, &z)| z * Complex::cis(2.0 * std::f64::consts::PI * f * n as f64))
            .collect();
        let rx = Receiver::new(RxConfig {
            sensitivity_dbm: -200.0,
            ..RxConfig::default()
        });
        let pkt = rx.receive(&shifted).unwrap();
        assert!((pkt.cfo - f).abs() < 1e-5, "cfo {} vs {f}", pkt.cfo);
        assert_eq!(pkt.psdu, framed);
        assert!(pkt.fcs_valid);
    }

    #[test]
    fn receive_all_finds_back_to_back_packets() {
        let tx = Transmitter::new(TxConfig::default());
        let mut buf = vec![Complex::ZERO; 100];
        for i in 0..3u8 {
            let mut p = vec![i; 40];
            freerider_coding::crc::append_crc32(&mut p);
            buf.extend(tx.transmit(&p).unwrap());
            buf.extend(vec![Complex::ZERO; 200]);
        }
        let rx = Receiver::new(RxConfig {
            sensitivity_dbm: -200.0,
            ..RxConfig::default()
        });
        let pkts = rx.receive_all(&buf);
        assert_eq!(pkts.len(), 3);
        for (i, p) in pkts.iter().enumerate() {
            assert_eq!(p.psdu[0], i as u8);
            assert!(p.fcs_valid);
        }
    }

    #[test]
    fn warm_scratch_reuse_is_bit_identical() {
        // A scratch reused across packets of different rates and lengths
        // must produce exactly the packets a fresh receive() does —
        // including every f64 (the repro harness depends on it).
        let rx = Receiver::new(RxConfig {
            sensitivity_dbm: -200.0,
            ..RxConfig::default()
        });
        let mut scratch = RxScratch::new();
        for (rate, len, noise_seed) in [
            (Mcs::Bpsk12, 120usize, 1u64),
            (Mcs::Qam16Half, 300, 2),
            (Mcs::Bpsk12, 40, 3),
            (Mcs::Qpsk34, 200, 4),
        ] {
            let tx = Transmitter::new(TxConfig {
                rate,
                ..TxConfig::default()
            });
            let mut framed = vec![0xA5u8; len];
            freerider_coding::crc::append_crc32(&mut framed);
            let mut buf = vec![Complex::ZERO; 120];
            buf.extend(tx.transmit(&framed).unwrap());
            buf.extend(vec![Complex::ZERO; 80]);
            NoiseSource::new(noise_seed, 0.02).add_to(&mut buf);
            let fresh = rx.receive(&buf).unwrap();
            let warm = rx.receive_with(&buf, &mut scratch).unwrap();
            assert_eq!(warm.psdu, fresh.psdu);
            assert_eq!(warm.data_bits, fresh.data_bits);
            assert_eq!(warm.fcs_valid, fresh.fcs_valid);
            assert_eq!(warm.signal, fresh.signal);
            assert_eq!(warm.start, fresh.start);
            assert_eq!(warm.end, fresh.end);
            assert_eq!(warm.cfo.to_bits(), fresh.cfo.to_bits());
            assert_eq!(warm.rssi_dbm.to_bits(), fresh.rssi_dbm.to_bits());
            assert_eq!(warm.equalized.len(), fresh.equalized.len());
            for (a, b) in warm.equalized.iter().zip(fresh.equalized.iter()) {
                for (x, y) in a.iter().zip(b.iter()) {
                    assert_eq!(x.re.to_bits(), y.re.to_bits());
                    assert_eq!(x.im.to_bits(), y.im.to_bits());
                }
            }
        }
    }

    #[test]
    fn flat_phase_offset_flips_bpsk_bits() {
        // The core FreeRider mechanism at the receiver: a 180° phase
        // rotation applied to whole data symbols makes the receiver decode
        // the complement bit stream (still a valid packet structure).
        let tx = Transmitter::new(TxConfig::default());
        let mut framed = vec![0x77u8; 60];
        freerider_coding::crc::append_crc32(&mut framed);
        let wave = tx.transmit(&framed).unwrap();
        let rx = Receiver::new(RxConfig {
            sensitivity_dbm: -200.0,
            ..RxConfig::default()
        });
        let clean = rx.receive(&wave).unwrap();

        // Rotate everything from DATA symbol 1 onward by π.
        let data_start = PREAMBLE_LEN + SYMBOL_LEN + SYMBOL_LEN; // skip SIGNAL + 1 symbol
        let mut rotated = wave.clone();
        for z in rotated[data_start..].iter_mut() {
            *z = -*z;
        }
        let tagged = rx.receive(&rotated).unwrap();
        assert!(!tagged.fcs_valid, "tag-modified packet must fail FCS");
        let n_dbps = clean.signal.rate.data_bits_per_symbol();
        // Symbol 0 decodes identically (Viterbi traceback from the flip
        // boundary can disturb the last ~half constraint-lengths of the
        // previous symbol, so leave a 16-bit margin)…
        assert_eq!(
            &tagged.data_bits[..n_dbps - 16],
            &clean.data_bits[..n_dbps - 16]
        );
        // …and the interior of the flipped region is the exact complement.
        let lo = n_dbps + 8;
        let hi = clean.data_bits.len() - 8;
        let flipped: usize = (lo..hi)
            .filter(|&k| tagged.data_bits[k] == clean.data_bits[k] ^ 1)
            .count();
        let frac = flipped as f64 / (hi - lo) as f64;
        assert!(frac > 0.99, "only {frac} of interior bits flipped");
    }
}
