//! Seeded-randomized properties: any payload at any rate survives the full
//! OFDM TX→RX chain at high SNR, with valid FCS and exact payload recovery.
//!
//! Each case draws its inputs from an independent `Rng64` stream, so a
//! failure report's case index pins the exact inputs forever.

use freerider_rt::Rng64;
use freerider_wifi::{Mcs, Receiver, RxConfig, Transmitter, TxConfig};

const CASES: u64 = 24;
const SUITE_SEED: u64 = 0x77F1_0001;

#[test]
fn any_payload_round_trips() {
    for case in 0..CASES {
        let mut rng = Rng64::derive(SUITE_SEED, case);
        let n = 1 + rng.index(299);
        let payload = rng.bytes(n);
        let rate = Mcs::ALL[rng.index(8)];
        let seed = 1 + rng.index(0x7F) as u8;

        let tx = Transmitter::new(TxConfig {
            rate,
            scrambler_seed: seed,
        });
        let mut psdu = payload.clone();
        freerider_coding::crc::append_crc32(&mut psdu);
        let wave = tx.transmit(&psdu).unwrap();
        let rx = Receiver::new(RxConfig {
            sensitivity_dbm: -200.0,
            ..RxConfig::default()
        });
        let pkt = rx.receive(&wave).unwrap();
        assert_eq!(pkt.signal.rate, rate, "case {case}");
        assert!(pkt.fcs_valid, "case {case}");
        assert_eq!(pkt.psdu, psdu, "case {case}");
    }
}

#[test]
fn tag_phase_flips_always_xor_decode() {
    // Rotate one 4-symbol group mid-packet by π: the decoded stream's
    // XOR against the clean stream is 1s exactly in that group's
    // interior, regardless of payload or which group was hit.
    let mut done = 0u64;
    let mut case = 0u64;
    while done < CASES {
        let mut rng = Rng64::derive(SUITE_SEED ^ 1, case);
        case += 1;
        let n = 30 + rng.index(170);
        let payload = rng.bytes(n);
        let flip_group = 1 + rng.index(5);

        let tx = Transmitter::new(TxConfig::default());
        let wave = tx.transmit(&payload).unwrap();
        let rx = Receiver::new(RxConfig {
            sensitivity_dbm: -200.0,
            ..RxConfig::default()
        });
        let clean = rx.receive(&wave).unwrap();
        let n_sym = clean.signal.rate.data_symbols_for(payload.len());
        if n_sym <= 1 + (flip_group + 1) * 4 {
            continue; // packet too short for this flip group; redraw
        }
        done += 1;

        let start = 320 + 80 + 80 * (1 + flip_group * 4);
        let mut tagged_wave = wave.clone();
        for z in tagged_wave[start..start + 320].iter_mut() {
            *z = -*z;
        }
        let tagged = rx.receive(&tagged_wave).unwrap();
        let decoded = freerider_core::decoder::decode_wifi_binary(
            &clean.data_bits,
            &tagged.data_bits,
            24,
            4,
            1,
        );
        for (g, &bit) in decoded.iter().enumerate() {
            assert_eq!(bit, u8::from(g == flip_group), "case {case} group {g}");
        }
    }
}
