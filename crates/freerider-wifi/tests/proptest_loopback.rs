//! Property: any payload at any rate survives the full OFDM TX→RX chain
//! at high SNR, with valid FCS and exact payload recovery.

use freerider_wifi::{Mcs, Receiver, RxConfig, Transmitter, TxConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_payload_round_trips(
        payload in prop::collection::vec(any::<u8>(), 1..300),
        rate_idx in 0usize..8,
        seed in 1u8..0x80,
    ) {
        let rate = Mcs::ALL[rate_idx];
        let tx = Transmitter::new(TxConfig { rate, scrambler_seed: seed });
        let mut psdu = payload.clone();
        freerider_coding::crc::append_crc32(&mut psdu);
        let wave = tx.transmit(&psdu).unwrap();
        let rx = Receiver::new(RxConfig {
            sensitivity_dbm: -200.0,
            ..RxConfig::default()
        });
        let pkt = rx.receive(&wave).unwrap();
        prop_assert_eq!(pkt.signal.rate, rate);
        prop_assert!(pkt.fcs_valid);
        prop_assert_eq!(pkt.psdu, psdu);
    }

    #[test]
    fn tag_phase_flips_always_xor_decode(
        payload in prop::collection::vec(any::<u8>(), 30..200),
        flip_group in 1usize..6,
    ) {
        // Rotate one 4-symbol group mid-packet by π: the decoded stream's
        // XOR against the clean stream is 1s exactly in that group's
        // interior, regardless of payload or which group was hit.
        let tx = Transmitter::new(TxConfig::default());
        let wave = tx.transmit(&payload).unwrap();
        let rx = Receiver::new(RxConfig {
            sensitivity_dbm: -200.0,
            ..RxConfig::default()
        });
        let clean = rx.receive(&wave).unwrap();
        let n_sym = clean.signal.rate.data_symbols_for(payload.len());
        prop_assume!(n_sym > 1 + (flip_group + 1) * 4);

        let start = 320 + 80 + 80 * (1 + flip_group * 4);
        let mut tagged_wave = wave.clone();
        for z in tagged_wave[start..start + 320].iter_mut() {
            *z = -*z;
        }
        let tagged = rx.receive(&tagged_wave).unwrap();
        let decoded = freerider_core::decoder::decode_wifi_binary(
            &clean.data_bits,
            &tagged.data_bits,
            24,
            4,
            1,
        );
        for (g, &bit) in decoded.iter().enumerate() {
            prop_assert_eq!(bit, u8::from(g == flip_group), "group {}", g);
        }
    }
}
