//! Parallel-vs-serial equivalence: the ISSUE's core runtime guarantee.
//!
//! Every experiment that fans out over `freerider_rt::Executor` derives one
//! RNG stream per work item, so the results must be *bit-identical* no
//! matter how many workers run them — `FREERIDER_THREADS=1` and
//! `FREERIDER_THREADS=8` produce the same figures. These tests pin that on
//! real experiment entry points (not just the executor unit tests).

use freerider::channel::BackscatterBudget;
use freerider::core::coexist::{backscatter_coexistence_on, CoexistTech};
use freerider::core::experiments::{
    distance_sweep_on, plm_accuracy_on, PlmAccuracyConfig, Technology,
};
use freerider::rt::Executor;
use std::sync::{Mutex, MutexGuard};

/// All tests in this binary record into the process-global telemetry
/// registry, so the telemetry-equivalence test below must not run while
/// another test is emitting events. One shared lock serialises them.
static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

fn telemetry_guard() -> MutexGuard<'static, ()> {
    TELEMETRY_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[test]
fn distance_sweep_is_bit_identical_across_worker_counts() {
    let _guard = telemetry_guard();
    let distances = [1.0, 3.0, 6.0];
    let run = |ex: Executor| {
        distance_sweep_on(
            ex,
            Technology::Zigbee,
            BackscatterBudget::zigbee_los(),
            &distances,
            1,
            40,
            0xD15_7A9CE,
        )
    };
    let serial = run(Executor::serial());
    let parallel = run(Executor::new(4));
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(parallel.iter()) {
        assert_eq!(s.distance_m.to_bits(), p.distance_m.to_bits());
        assert_eq!(s.throughput_bps.to_bits(), p.throughput_bps.to_bits());
        assert_eq!(s.ber.to_bits(), p.ber.to_bits());
        assert_eq!(s.prr.to_bits(), p.prr.to_bits());
        assert_eq!(s.rssi_dbm.to_bits(), p.rssi_dbm.to_bits());
    }
}

#[test]
fn plm_accuracy_is_bit_identical_across_worker_counts() {
    let _guard = telemetry_guard();
    let cfg = PlmAccuracyConfig::default();
    let distances = [0.5, 1.0, 2.0, 4.0, 8.0];
    let serial = plm_accuracy_on(Executor::serial(), &cfg, &distances, 7);
    let parallel = plm_accuracy_on(Executor::new(4), &cfg, &distances, 7);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(parallel.iter()) {
        assert_eq!(s.distance_m.to_bits(), p.distance_m.to_bits());
        assert_eq!(s.accuracy.to_bits(), p.accuracy.to_bits());
    }
}

#[test]
fn coexistence_cdfs_are_bit_identical_across_worker_counts() {
    let _guard = telemetry_guard();
    let run = |ex: Executor| backscatter_coexistence_on(ex, CoexistTech::Zigbee, 3, 1, 21);
    let mut serial = run(Executor::serial());
    let mut parallel = run(Executor::new(4));
    for q in [0.1, 0.5, 0.9] {
        assert_eq!(
            serial.absent.quantile(q).to_bits(),
            parallel.absent.quantile(q).to_bits(),
            "absent q={q}"
        );
        assert_eq!(
            serial.present.quantile(q).to_bits(),
            parallel.present.quantile(q).to_bits(),
            "present q={q}"
        );
    }
}

#[test]
fn trace_forensics_are_identical_across_worker_counts() {
    // The flight recorder's determinism contract: with
    // FREERIDER_TRACE=failures, the *set* of forensic packet records (and
    // their order-normalised, time-free serialisation) is the same for
    // one worker and four. Capacities are raised so ring-buffer eviction
    // (which is arrival-order dependent by design) cannot trim the set.
    use freerider::telemetry::trace::{self, TraceMode};
    let _guard = telemetry_guard();
    // Sweep points near the Fig. 10 range edge, where backscatter decode
    // genuinely fails (no preamble at the far points) and packets land in
    // the black box.
    let distances = [2.0, 34.0, 42.0];
    let run = |ex: Executor| {
        freerider::telemetry::reset();
        trace::set_mode(TraceMode::Failures);
        trace::reset();
        trace::set_capacity(1 << 20, 1 << 20);
        distance_sweep_on(
            ex,
            Technology::Wifi,
            BackscatterBudget::wifi_los(),
            &distances,
            3,
            300,
            10,
        );
        let records = trace::drain();
        trace::set_mode(TraceMode::Off);
        (records.len(), trace::forensics_json(&records))
    };
    let (n_serial, serial) = run(Executor::serial());
    let (n_parallel, parallel) = run(Executor::new(4));
    assert!(
        n_serial > 0,
        "the far sweep points must produce at least one failed packet"
    );
    assert_eq!(n_serial, n_parallel);
    assert_eq!(
        serial, parallel,
        "forensic serialisation must be byte-identical across worker counts"
    );
    trace::set_capacity(trace::DEFAULT_FAILED_CAP, trace::DEFAULT_OK_CAP);
    trace::reset();
    freerider::telemetry::reset();
}

#[test]
fn telemetry_metrics_are_identical_across_worker_counts() {
    // The tentpole guarantee of the telemetry crate: counters and
    // histograms collected across Executor workers merge to the exact
    // same values (and the exact same serialised JSON) whether the sweep
    // ran on one thread or four. Wall-clock timers are excluded by
    // construction — `metrics_json` never contains them.
    let _guard = telemetry_guard();
    let distances = [1.0, 3.0, 6.0];
    let run = |ex: Executor| {
        freerider::telemetry::reset();
        distance_sweep_on(
            ex,
            Technology::Zigbee,
            BackscatterBudget::zigbee_los(),
            &distances,
            1,
            40,
            0xD15_7A9CE,
        );
        freerider::telemetry::snapshot()
    };
    let serial = run(Executor::serial());
    let parallel = run(Executor::new(4));
    assert!(!serial.is_empty(), "the sweep must record telemetry");
    assert!(
        serial.counter("zigbee.rx.receive.calls") > 0,
        "ZigBee RX stages must be instrumented"
    );
    assert_eq!(
        serial.metrics_json(),
        parallel.metrics_json(),
        "metric sections must be byte-identical across worker counts"
    );
    freerider::telemetry::reset();
}
