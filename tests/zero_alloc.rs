//! Proof that the steady-state WiFi receive path is allocation-free.
//!
//! A counting `#[global_allocator]` wraps the system allocator for this
//! test binary only. The first packet through a fresh [`RxScratch`] warms
//! every buffer (and interns the telemetry keys for this thread); decoding
//! a second, same-shaped packet must then touch the heap exactly zero
//! times. This pins the tentpole guarantee the benchmarks rely on — any
//! future allocation sneaking into `receive_with` fails this test rather
//! than silently costing 15% on `wifi/rx_1000B_warm`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use freerider::wifi::{Receiver, RxConfig, RxScratch, Transmitter, TxConfig};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

struct CountingAlloc;

// Every operation defers to `System`, which upholds the `GlobalAlloc`
// contract; the counter updates have no effect on layout, alignment, or
// the returned pointers.
// SAFETY: forwards verbatim to `System`, which satisfies the contract.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same contract as `System.alloc`; layout forwarded unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    // SAFETY: same contract as `System.dealloc`; args forwarded unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // A realloc is a (re)allocation, so it counts toward the total.
    // SAFETY: same contract as `System.realloc`; args forwarded unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: same contract as `System.alloc_zeroed`; layout forwarded unchanged.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_rx_with_warm_scratch_is_allocation_free() {
    // The benchmark workload: a 1000-byte FCS-framed PSDU at the default
    // 6 Mbps BPSK excitation rate.
    let mut framed: Vec<u8> = (0..996).map(|i| (i % 251) as u8).collect();
    freerider::coding::crc::append_crc32(&mut framed);
    let tx = Transmitter::new(TxConfig::default());
    let wave = tx.transmit(&framed).unwrap();
    let rx = Receiver::new(RxConfig {
        sensitivity_dbm: -200.0,
        ..RxConfig::default()
    });

    // Packet 1 warms the arena: every Vec grows to its steady-state
    // capacity and the thread's telemetry collector interns its keys.
    let mut scratch = RxScratch::new();
    let warm = rx.receive_with(&wave, &mut scratch).unwrap();
    assert!(warm.fcs_valid, "warm-up decode must succeed");
    assert_eq!(warm.psdu, framed);

    // Packet 2 through the warm scratch: zero heap traffic allowed.
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let result = rx.receive_with(&wave, &mut scratch);
    COUNTING.store(false, Ordering::SeqCst);
    let n = ALLOCS.load(Ordering::SeqCst);

    let pkt = result.unwrap();
    assert!(pkt.fcs_valid);
    assert_eq!(pkt.psdu, framed);
    assert_eq!(
        n, 0,
        "steady-state receive_with allocated {n} time(s); the RX hot path must be allocation-free with a warm scratch"
    );
}

#[test]
fn warm_batch_kernels_are_allocation_free() {
    // The batch kernels the lane rewrite introduced must individually be
    // allocation-free once their output buffers are warm: the Viterbi
    // lane dispatcher on a warm `ViterbiScratch`, `FftPlan::run_batch`
    // over a preallocated block, and the batched demappers (plain and
    // deinterleave-fused) into warmed LLR buffers.
    use freerider::coding::convolutional::{viterbi_decode_soft_scratch, CodeRate, ViterbiScratch};
    use freerider::coding::interleaver::Interleaver;
    use freerider::dsp::fft::plan64;
    use freerider::dsp::Complex;
    use freerider::wifi::mapping::{soft_demap_batch_into, soft_demap_deinterleave_batch_into};
    use freerider::wifi::rates::Modulation;

    let llrs: Vec<f64> = (0..1200)
        .map(|i| ((i * 37 % 101) as f64 - 50.0) / 13.0)
        .collect();
    let mut vit = ViterbiScratch::new();
    let _ = viterbi_decode_soft_scratch(&llrs, CodeRate::Half, &mut vit); // warm

    let mut blocks: Vec<Complex> = (0..8 * 64)
        .map(|i| Complex::cis(0.003 * (i * i) as f64))
        .collect();

    let symbols: Vec<[Complex; 48]> = (0..20)
        .map(|n| std::array::from_fn(|i| Complex::cis(0.1 * (n * 48 + i) as f64)))
        .collect();
    let gains: Vec<f64> = (0..48).map(|i| 0.5 + (i as f64) / 48.0).collect();
    let mut demap_out = Vec::new();
    soft_demap_batch_into(&symbols, &gains, Modulation::Qam16, &mut demap_out); // warm
    let il = Interleaver::new(48 * 4, 4);
    let mut fused_out = Vec::new();
    soft_demap_deinterleave_batch_into(
        &symbols,
        &gains,
        Modulation::Qam16,
        il.inverse_map(),
        &mut fused_out,
    ); // warm

    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let _ = viterbi_decode_soft_scratch(&llrs, CodeRate::Half, &mut vit);
    plan64().run_batch(&mut blocks).unwrap();
    soft_demap_batch_into(&symbols, &gains, Modulation::Qam16, &mut demap_out);
    soft_demap_deinterleave_batch_into(
        &symbols,
        &gains,
        Modulation::Qam16,
        il.inverse_map(),
        &mut fused_out,
    );
    COUNTING.store(false, Ordering::SeqCst);
    let n = ALLOCS.load(Ordering::SeqCst);

    assert_eq!(
        n, 0,
        "warm batch kernels allocated {n} time(s); lane Viterbi, run_batch and batched demap must be allocation-free"
    );
}
