//! Cross-crate integration: full excitation → tag → receiver → XOR-decode
//! pipelines for all three technologies, exercising every crate in the
//! workspace together.

use freerider::channel::channel::Fading;
use freerider::channel::BackscatterBudget;
use freerider::core::link::{BleLink, LinkConfig, WifiLink, WifiTagScheme, ZigbeeLink};

fn quick(
    budget: BackscatterBudget,
    d: f64,
    payload: usize,
    packets: usize,
    seed: u64,
) -> LinkConfig {
    LinkConfig {
        payload_len: payload,
        packets,
        fading: Fading::None,
        ..LinkConfig::new(budget, d, seed)
    }
}

#[test]
fn wifi_tag_data_rides_on_productive_traffic() {
    let stats = WifiLink::new(quick(BackscatterBudget::wifi_los(), 3.0, 250, 3, 1)).run();
    // The headline property: both links work at once.
    assert_eq!(stats.productive_ok, 3, "WiFi must stay productive");
    assert_eq!(stats.packets_decoded, 3, "backscatter must decode");
    assert_eq!(stats.ber(), 0.0, "close-range tag data is clean");
    assert!(stats.tag_bits_sent >= 60);
}

#[test]
fn wifi_throughput_near_60kbps_with_long_frames() {
    let stats = WifiLink::new(quick(BackscatterBudget::wifi_los(), 2.0, 1000, 2, 2)).run();
    let t = stats.throughput_bps();
    assert!((55e3..66e3).contains(&t), "throughput {t}");
}

#[test]
fn zigbee_link_end_to_end() {
    let stats = ZigbeeLink::new(quick(BackscatterBudget::zigbee_los(), 4.0, 80, 3, 3)).run();
    assert_eq!(stats.productive_ok, 3);
    assert_eq!(stats.packets_decoded, 3);
    assert!(stats.ber() < 0.05, "BER {}", stats.ber());
    let t = stats.throughput_bps();
    assert!(
        (11e3..17e3).contains(&t),
        "throughput {t} vs paper ~15 kbps"
    );
}

#[test]
fn ble_link_end_to_end() {
    let stats = BleLink::new(quick(BackscatterBudget::ble_los(), 2.0, 37, 4, 4)).run();
    assert_eq!(stats.productive_ok, 4);
    assert_eq!(stats.packets_decoded, 4);
    assert!(stats.ber() < 0.1, "BER {}", stats.ber());
    let t = stats.throughput_bps();
    assert!(
        (45e3..60e3).contains(&t),
        "throughput {t} vs paper ~55 kbps"
    );
}

#[test]
fn quaternary_scheme_doubles_the_tag_rate() {
    // Quaternary excites at QPSK (π/2 must be a constellation symmetry),
    // so the same payload occupies half the airtime while carrying the
    // same number of tag bits — the delivered tag *rate* doubles.
    let cfg = quick(BackscatterBudget::wifi_los(), 3.0, 500, 2, 5);
    let binary = WifiLink::new(cfg.clone()).run();
    let quaternary = WifiLink::new_quaternary(cfg).run();
    assert_eq!(quaternary.packets_decoded, 2);
    assert!(quaternary.ber() < 0.02, "BER {}", quaternary.ber());
    let ratio = quaternary.throughput_bps() / binary.throughput_bps();
    assert!((ratio - 2.0).abs() < 0.2, "rate ratio {ratio}");
}

#[test]
fn wifi_scheme_enum_is_exposed() {
    let link = WifiLink::new(quick(BackscatterBudget::wifi_los(), 2.0, 100, 1, 6));
    assert_eq!(link.scheme, WifiTagScheme::Binary);
    let q = WifiLink::new_quaternary(quick(BackscatterBudget::wifi_los(), 2.0, 100, 1, 6));
    assert_eq!(q.scheme, WifiTagScheme::Quaternary);
}

#[test]
fn links_die_beyond_the_paper_ranges() {
    // Past the cliff for each technology, nothing decodes.
    let w = WifiLink::new(quick(BackscatterBudget::wifi_los(), 55.0, 250, 2, 7)).run();
    assert_eq!(w.packets_decoded, 0);
    let z = ZigbeeLink::new(quick(BackscatterBudget::zigbee_los(), 30.0, 60, 2, 8)).run();
    assert_eq!(z.packets_decoded, 0);
    let b = BleLink::new(quick(BackscatterBudget::ble_los(), 18.0, 37, 2, 9)).run();
    assert_eq!(b.packets_decoded, 0);
}

#[test]
fn tag_out_of_excitation_power_backscatters_nothing() {
    // §4.3: past ~2 m TX-to-tag on ZigBee the tag's front end is starved.
    let mut cfg = quick(BackscatterBudget::zigbee_los(), 2.0, 60, 2, 10);
    cfg.d_tx_tag_m = 3.0;
    let stats = ZigbeeLink::new(cfg).run();
    assert_eq!(stats.packets_decoded, 0);
    assert_eq!(stats.tag_bits_sent, 0);
}
