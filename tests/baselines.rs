//! Integration coverage for the baseline systems the paper positions
//! itself against: HitchHike (802.11b) and tone excitation.

use freerider::channel::channel::{Channel, Fading};
use freerider::channel::BackscatterBudget;
use freerider::dot11b::hitchhike::{decode_hitchhike, HitchhikeTranslator};
use freerider::dot11b::{Receiver, RxConfig, Transmitter};
use freerider::rt::Rng64;

#[test]
fn hitchhike_link_end_to_end_through_the_channel() {
    let mut rng = Rng64::new(31);
    let budget = BackscatterBudget {
        noise_floor_dbm: freerider::dsp::db::thermal_noise_dbm(22e6, 6.0),
        ..BackscatterBudget::wifi_los()
    };
    let tx = Transmitter::new();
    let rx_ref = Receiver::new(RxConfig {
        sensitivity_dbm: -200.0,
        ..RxConfig::default()
    });
    let rx = Receiver::new(RxConfig::default());
    let translator = HitchhikeTranslator::standard();
    let rssi = budget.rssi_dbm(1.0, 5.0);
    let mut ch_ref = Channel::new(-45.0, budget.noise_floor_dbm, Fading::None, 32);
    let mut ch = Channel::new(rssi, budget.noise_floor_dbm, Fading::None, 33);

    let psdu = rng.bytes(300);
    let wave = tx.transmit(&psdu).unwrap();
    let original = rx_ref.receive(&ch_ref.propagate(&wave)).unwrap();
    assert_eq!(original.psdu, psdu, "productive 802.11b link works");

    let bits = rng.bits(translator.capacity(wave.len()));
    assert_eq!(bits.len(), 2400, "1 tag bit per PSDU symbol");
    let (tagged, _) = translator.translate(&wave, &bits);
    let pkt = rx.receive(&ch.propagate_padded(&tagged, 200)).unwrap();
    let decoded = decode_hitchhike(&original.psdu_bits, &pkt.psdu_bits, 1, 0);
    let errors = bits
        .iter()
        .zip(decoded.iter())
        .filter(|(a, b)| a != b)
        .count();
    let ber = errors as f64 / bits.len() as f64;
    assert!(ber < 5e-3, "{errors}/{} tag-bit errors", bits.len());
}

#[test]
fn hitchhike_rate_advantage_is_an_order_of_magnitude() {
    // The paper's §4.2.1 comparison, as an invariant: DSSS symbols are
    // 1 µs and carry one tag bit; FreeRider's OFDM window is 4 × 4 µs.
    let hh = HitchhikeTranslator::standard().bit_rate();
    let fr = freerider::tag::translator::PhaseTranslator::wifi_binary().bit_rate(20e6);
    assert!((hh / fr - 16.0).abs() < 0.01, "ratio {}", hh / fr);
}

#[test]
fn baseline_experiments_run_via_the_harness() {
    for name in ["baseline-hitchhike", "baseline-tone"] {
        let out = freerider_bench::run(name, true).expect("known experiment");
        assert!(out.contains("FreeRider"), "{name} output incomplete");
    }
}
