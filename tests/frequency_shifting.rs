//! The §2.3.4 frequency-shifting mechanics, end-to-end at the IQ level.
//!
//! The per-technology links represent the tag's channel-moving shift
//! analytically in the link budget (DESIGN.md §2.9); this test closes that
//! abstraction gap once, concretely: a real ZigBee waveform is upsampled
//! into a wide band, multiplied by a real ±1 square wave (the RF
//! transistor), and a commodity receiver tuned to the *shifted* channel —
//! implemented with an honest mixer + channel-select filter + decimator —
//! decodes the frame. The mirror sideband and the square wave's harmonics
//! are physically present and measurably rejected.

use freerider::dsp::fir::Fir;
use freerider::dsp::osc::SquareWave;
use freerider::dsp::resample::{downsample2, upsample2};
use freerider::dsp::{db, Complex};
use freerider::zigbee::{Receiver, RxConfig, Transmitter};

/// Shift frequency: 1.6 MHz in the 8 Msps wide band = 0.2 cycles/sample.
/// (Not fs/4: at exactly fs/4 the square wave's 3rd harmonic aliases onto
/// the wanted channel — a real design consideration when picking ring-
/// oscillator frequencies against the simulation/ADC bandwidth.)
const SHIFT: f64 = 0.2;

fn shift_and_receive(payload: &[u8]) -> (Vec<Complex>, Vec<Complex>) {
    // 1. ZigBee excitation at its native 4 Msps baseband.
    let tx = Transmitter::new();
    let base = tx.transmit(payload).expect("payload fits");

    // 2. Up into the 8 Msps simulation band (still centred at 0).
    let wide = upsample2(&base);

    // 3. The tag toggles its RF transistor at 1.6 MHz: the real double-
    //    sideband multiply — copies appear at ±1.6 MHz plus odd harmonics.
    let mut sq = SquareWave::new(SHIFT);
    let shifted: Vec<Complex> = wide.iter().map(|&z| z * sq.next()).collect();

    // 4. The receiver tunes to +1.6 MHz: mix down, channel-select,
    //    decimate back to the PHY's 4 Msps.
    let front_end = Fir::low_pass(0.14, 97);
    let tuned = front_end.filter_around(&shifted, SHIFT);
    let down = downsample2(&tuned);
    (down, shifted)
}

#[test]
fn commodity_receiver_decodes_on_the_shifted_channel() {
    let payload = b"shifted by a square wave";
    let (down, _) = shift_and_receive(payload);
    let rx = Receiver::new(RxConfig {
        sensitivity_dbm: -200.0,
        ..RxConfig::default()
    });
    let pkt = rx.receive(&down).expect("decodes on the shifted channel");
    assert!(pkt.fcs_valid, "FCS must survive the shift chain");
    assert_eq!(pkt.ppdu.payload(), payload);
}

#[test]
fn shifted_copy_carries_the_square_wave_fundamental_power() {
    let (down, _) = shift_and_receive(&[0x5A; 24]);
    // The received copy is scaled by 2/π (one sideband of the square wave):
    // power ≈ (2/π)² ≈ 0.405 of the unit-power excitation.
    let p = db::mean_power(&down[500..down.len() - 500]);
    let expect = SquareWave::FUNDAMENTAL_SIDEBAND_GAIN.powi(2);
    assert!(
        (p - expect).abs() < 0.06,
        "sideband power {p} vs 2/π² = {expect}"
    );
}

#[test]
fn mirror_sideband_exists_and_is_rejected() {
    let (_, shifted) = shift_and_receive(&[0xC3; 24]);
    // Before channel selection, the mirror at −1.6 MHz is as strong as
    // the wanted copy at +1.6 MHz — the §3.2.3 double-sideband fact.
    // Narrow probe (±0.4 MHz) so the DC measurement doesn't catch the
    // skirts of the ±1.6 MHz sidebands (ZigBee occupies ±1 MHz each side).
    let probe = |freq: f64| -> f64 {
        let f = Fir::low_pass(0.05, 129);
        let band = f.filter_around(&shifted, freq);
        db::mean_power(&band[300..shifted.len() - 300])
    };
    let upper = probe(SHIFT);
    let lower = probe(-SHIFT);
    assert!(
        (upper - lower).abs() / upper < 0.1,
        "sidebands should be symmetric: {upper} vs {lower}"
    );
    // The original channel (DC) holds little: a 50 % square wave has no
    // DC term, so the fundamental has *moved* the signal. A small residue
    // remains — dominated by the 5th harmonic re-landing at DC (5 × 0.2 =
    // 1.0 cycles/sample ≡ 0) plus resampler imaging — a real constraint on
    // choosing the tag's ring-oscillator frequency against the receiver's
    // band plan.
    let centre = probe(0.0);
    assert!(
        centre < upper * 0.15,
        "excitation channel should be nearly clear: {centre} vs {upper}"
    );
}

#[test]
fn receiver_on_the_unshifted_channel_sees_no_frame() {
    // A receiver left on the original channel must find nothing — the
    // interference-avoidance property the shift exists to provide
    // (§2.3.4: "the backscattered signal … occupies a different channel").
    let (_, shifted) = shift_and_receive(&[0x11; 24]);
    let front_end = Fir::low_pass(0.14, 97);
    let tuned = front_end.filter_around(&shifted, 0.0);
    let down = downsample2(&tuned);
    let rx = Receiver::new(RxConfig {
        sensitivity_dbm: -200.0,
        ..RxConfig::default()
    });
    assert!(rx.receive(&down).is_err(), "nothing should decode at DC");
}
