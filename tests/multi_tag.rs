//! Multi-tag system integration: real tags, real PLM control messages,
//! the adaptive coordinator, and the Fig. 17 simulator.

use freerider::core::network::{TagNetwork, TagNetworkConfig};
use freerider::mac::{MacScheme, NetworkConfig, NetworkSim};

#[test]
fn twenty_tags_all_get_served() {
    // The paper's headline: "our MAC scheme can communicate successfully
    // with each of the twenty tags and ensure uplink fairness among them."
    let mut net = TagNetwork::new(TagNetworkConfig {
        n_tags: 20,
        backlog_bits: 100_000,
        seed: 21,
        ..TagNetworkConfig::default()
    });
    let report = net.run(120);
    assert!(report.per_tag_bits.iter().all(|&b| b > 0), "{report:?}");
    assert!(report.fairness > 0.75, "fairness {}", report.fairness);
}

#[test]
fn fig17_shape_holds() {
    let run = |n: usize, scheme: MacScheme| {
        let mut cfg = NetworkConfig::paper_fig17(n, scheme, 22);
        cfg.rounds = 300;
        NetworkSim::new(cfg).run()
    };
    let a4 = run(4, MacScheme::FramedAloha).aggregate_bps;
    let a20 = run(20, MacScheme::FramedAloha).aggregate_bps;
    let t20 = run(20, MacScheme::Tdm).aggregate_bps;
    // Shape: rises with tag count; TDM dominates Aloha.
    assert!(a20 > a4 * 1.5, "{a4} → {a20}");
    assert!(t20 > a20 * 1.4, "TDM {t20} vs Aloha {a20}");
}

#[test]
fn network_and_model_agree_qualitatively() {
    // The integration network (real PLM + tags) and the calibrated model
    // must both show near-perfect fairness with a healthy control channel.
    let mut net = TagNetwork::new(TagNetworkConfig {
        n_tags: 8,
        pulse_error_prob: 0.0,
        backlog_bits: 50_000,
        seed: 23,
        ..TagNetworkConfig::default()
    });
    let integration = net.run(100);
    let model = NetworkSim::new(NetworkConfig::paper_fig17(8, MacScheme::FramedAloha, 23)).run();
    assert!(integration.fairness > 0.85);
    assert!(model.fairness > 0.85);
}

#[test]
fn lossy_control_channel_starves_but_does_not_crash() {
    let mut net = TagNetwork::new(TagNetworkConfig {
        n_tags: 6,
        pulse_error_prob: 0.4, // ~18 pulses per message → almost all lost
        backlog_bits: 10_000,
        seed: 24,
        ..TagNetworkConfig::default()
    });
    let report = net.run(60);
    let healthy = TagNetwork::new(TagNetworkConfig {
        n_tags: 6,
        pulse_error_prob: 0.0,
        backlog_bits: 10_000,
        seed: 24,
        ..TagNetworkConfig::default()
    })
    .run(60);
    let lossy_total: u64 = report.per_tag_bits.iter().sum();
    let healthy_total: u64 = healthy.per_tag_bits.iter().sum();
    assert!(
        lossy_total < healthy_total / 4,
        "lossy {lossy_total} vs healthy {healthy_total}"
    );
}
