//! Property-based tests (proptest) over the workspace's core invariants.

use freerider::coding::convolutional::{encode, viterbi_decode, CodeRate};
use freerider::coding::crc;
use freerider::coding::interleaver::Interleaver;
use freerider::coding::scrambler::Scrambler;
use freerider::coding::whitening::Whitener;
use freerider::dsp::{bits, fft, Complex};
use freerider::tag::plm::{PlmConfig, PlmEncoder, PlmReceiver};
use freerider::tag::translator::PhaseTranslator;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_ifft_round_trips(values in prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 64)) {
        let orig: Vec<Complex> = values.iter().map(|&(r, i)| Complex::new(r, i)).collect();
        let mut v = orig.clone();
        fft::fft(&mut v).unwrap();
        fft::ifft(&mut v).unwrap();
        for (a, b) in v.iter().zip(orig.iter()) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn bytes_bits_round_trip(data in prop::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(bits::bits_to_bytes_lsb(&bits::bytes_to_bits_lsb(&data)), data.clone());
        prop_assert_eq!(bits::bits_to_bytes_msb(&bits::bytes_to_bits_msb(&data)), data);
    }

    #[test]
    fn scrambler_is_involution(seed in 1u8..0x80, data in prop::collection::vec(0u8..2, 1..512)) {
        let once = Scrambler::new(seed).scramble(&data);
        let twice = Scrambler::new(seed).scramble(&once);
        prop_assert_eq!(twice, data);
    }

    #[test]
    fn whitening_is_involution(ch in 0u8..40, data in prop::collection::vec(0u8..2, 1..256)) {
        let once = Whitener::for_channel(ch).whiten(&data);
        let twice = Whitener::for_channel(ch).whiten(&once);
        prop_assert_eq!(twice, data);
    }

    #[test]
    fn viterbi_inverts_encoder(data in prop::collection::vec(0u8..2, 1..200)) {
        let mut bits = data.clone();
        bits.extend_from_slice(&[0; 6]);
        for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            let decoded = viterbi_decode(&encode(&bits, rate), rate);
            prop_assert_eq!(&decoded[..data.len()], &data[..]);
        }
    }

    #[test]
    fn interleaver_round_trips(sym in prop::collection::vec(0u8..2, 48..=48)) {
        for (n_cbps, n_bpsc) in [(48usize, 1usize), (96, 2), (192, 4), (288, 6)] {
            let il = Interleaver::new(n_cbps, n_bpsc);
            let block: Vec<u8> = sym.iter().cycle().take(n_cbps).copied().collect();
            prop_assert_eq!(il.deinterleave_symbol(&il.interleave_symbol(&block)), block);
        }
    }

    #[test]
    fn crc32_rejects_any_corruption(
        data in prop::collection::vec(any::<u8>(), 4..128),
        byte in 0usize..128,
        bit in 0u8..8,
    ) {
        let mut frame = data;
        crc::append_crc32(&mut frame);
        prop_assert!(crc::check_crc32(&frame));
        let idx = byte % frame.len();
        frame[idx] ^= 1 << bit;
        prop_assert!(!crc::check_crc32(&frame));
    }

    #[test]
    fn phase_translation_preserves_power_and_is_invertible(
        nbits in 1usize..20,
        data_start in 0usize..64,
    ) {
        let t = PhaseTranslator {
            delta_theta: std::f64::consts::PI,
            levels: 2,
            symbols_per_step: 2,
            symbol_len: 8,
            data_start,
        };
        let excitation: Vec<Complex> =
            (0..400).map(|i| Complex::cis(i as f64 * 0.37)).collect();
        let tag_bits: Vec<u8> = (0..nbits).map(|i| (i % 2) as u8).collect();
        let (out, consumed) = t.translate(&excitation, &tag_bits);
        prop_assert!(consumed <= nbits);
        prop_assert_eq!(out.len(), excitation.len());
        // Phase translation never changes sample magnitudes.
        for (a, b) in out.iter().zip(excitation.iter()) {
            prop_assert!((a.abs() - b.abs()).abs() < 1e-12);
        }
        // Applying the same translation again undoes it (π is an involution).
        let (back, _) = t.translate(&out, &tag_bits);
        for (a, b) in back.iter().zip(excitation.iter()) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn xor_decode_recovers_any_tag_pattern(pattern in prop::collection::vec(0u8..2, 1..40)) {
        // Clean-channel model of the full decode path: flips over windows.
        let n_dbps = 24usize;
        let window = 4usize;
        let orig = vec![0u8; n_dbps * (1 + pattern.len() * window)];
        let mut back = orig.clone();
        for (k, &bit) in pattern.iter().enumerate() {
            if bit == 1 {
                let lo = n_dbps * (1 + k * window);
                let hi = lo + n_dbps * window;
                for b in back[lo..hi].iter_mut() {
                    *b ^= 1;
                }
            }
        }
        let decoded = freerider::core::decoder::decode_wifi_binary(&orig, &back, n_dbps, window, 1);
        prop_assert_eq!(decoded, pattern);
    }

    #[test]
    fn plm_messages_survive_arbitrary_ambient_interleaving(
        msg in prop::collection::vec(0u8..2, 8..=8),
        ambient in prop::collection::vec(0.04e-3f64..2.7e-3, 0..40),
    ) {
        let cfg = PlmConfig::default();
        let enc = PlmEncoder::new(cfg);
        let mut rx = PlmReceiver::new(cfg, 8);
        // Hostile prelude of ambient durations (skip any that alias).
        for &d in &ambient {
            if (d - cfg.l0_s).abs() > cfg.tolerance_s && (d - cfg.l1_s).abs() > cfg.tolerance_s {
                prop_assert!(rx.push_pulse(d).is_none());
            }
        }
        let mut got = None;
        for d in enc.encode(&msg) {
            got = got.or(rx.push_pulse(d));
        }
        prop_assert_eq!(got, Some(msg));
    }

    #[test]
    fn jain_index_is_bounded(alloc in prop::collection::vec(0.0f64..1e6, 1..50)) {
        let j = freerider::mac::fairness::jain_index(&alloc);
        let n = alloc.len() as f64;
        prop_assert!(j <= 1.0 + 1e-9);
        prop_assert!(j >= 1.0 / n - 1e-9);
    }
}
