//! Seeded-randomized tests over the workspace's core invariants.
//!
//! Each property draws `CASES` independent inputs from hierarchically
//! derived `Rng64` streams (one stream per case), so any failure report's
//! case index pins the exact inputs forever — the hermetic replacement for
//! the proptest suite this file used to be.

use freerider::coding::convolutional::{encode, viterbi_decode, CodeRate};
use freerider::coding::crc;
use freerider::coding::interleaver::Interleaver;
use freerider::coding::scrambler::Scrambler;
use freerider::coding::whitening::Whitener;
use freerider::dsp::{bits, fft, Complex};
use freerider::rt::Rng64;
use freerider::tag::plm::{PlmConfig, PlmEncoder, PlmReceiver};
use freerider::tag::translator::PhaseTranslator;

const CASES: u64 = 64;
const SUITE_SEED: u64 = 0xF4EE_41DE;

/// One derived stream per (property, case) pair.
fn case_rng(property: u64, case: u64) -> Rng64 {
    Rng64::derive(SUITE_SEED, (property << 32) | case)
}

#[test]
fn fft_ifft_round_trips() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let orig: Vec<Complex> = (0..64)
            .map(|_| Complex::new(rng.f64_range(-1.0, 1.0), rng.f64_range(-1.0, 1.0)))
            .collect();
        let mut v = orig.clone();
        fft::fft(&mut v).unwrap();
        fft::ifft(&mut v).unwrap();
        for (a, b) in v.iter().zip(orig.iter()) {
            assert!((*a - *b).abs() < 1e-9, "case {case}");
        }
    }
}

#[test]
fn bytes_bits_round_trip() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let n = rng.index(256);
        let data = rng.bytes(n);
        assert_eq!(
            bits::bits_to_bytes_lsb(&bits::bytes_to_bits_lsb(&data)),
            data,
            "case {case}"
        );
        assert_eq!(
            bits::bits_to_bytes_msb(&bits::bytes_to_bits_msb(&data)),
            data,
            "case {case}"
        );
    }
}

#[test]
fn scrambler_is_involution() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let seed = 1 + rng.index(0x7F) as u8;
        let n = 1 + rng.index(511);
        let data = rng.bits(n);
        let once = Scrambler::new(seed).scramble(&data);
        let twice = Scrambler::new(seed).scramble(&once);
        assert_eq!(twice, data, "case {case}");
    }
}

#[test]
fn whitening_is_involution() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let ch = rng.index(40) as u8;
        let n = 1 + rng.index(255);
        let data = rng.bits(n);
        let once = Whitener::for_channel(ch).whiten(&data);
        let twice = Whitener::for_channel(ch).whiten(&once);
        assert_eq!(twice, data, "case {case}");
    }
}

#[test]
fn viterbi_inverts_encoder() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let n = 1 + rng.index(199);
        let data = rng.bits(n);
        let mut padded = data.clone();
        padded.extend_from_slice(&[0; 6]);
        for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            let decoded = viterbi_decode(&encode(&padded, rate), rate);
            assert_eq!(&decoded[..data.len()], &data[..], "case {case} {rate:?}");
        }
    }
}

#[test]
fn interleaver_round_trips() {
    for case in 0..CASES {
        let mut rng = case_rng(6, case);
        let sym = rng.bits(48);
        for (n_cbps, n_bpsc) in [(48usize, 1usize), (96, 2), (192, 4), (288, 6)] {
            let il = Interleaver::new(n_cbps, n_bpsc);
            let block: Vec<u8> = sym.iter().cycle().take(n_cbps).copied().collect();
            assert_eq!(
                il.deinterleave_symbol(&il.interleave_symbol(&block)),
                block,
                "case {case} n_cbps {n_cbps}"
            );
        }
    }
}

#[test]
fn crc32_rejects_any_corruption() {
    for case in 0..CASES {
        let mut rng = case_rng(7, case);
        let n = 4 + rng.index(124);
        let mut frame = rng.bytes(n);
        crc::append_crc32(&mut frame);
        assert!(crc::check_crc32(&frame), "case {case}");
        let idx = rng.index(frame.len());
        frame[idx] ^= 1 << rng.index(8);
        assert!(!crc::check_crc32(&frame), "case {case}");
    }
}

#[test]
fn phase_translation_preserves_power_and_is_invertible() {
    for case in 0..CASES {
        let mut rng = case_rng(8, case);
        let nbits = 1 + rng.index(19);
        let data_start = rng.index(64);
        let t = PhaseTranslator {
            delta_theta: std::f64::consts::PI,
            levels: 2,
            symbols_per_step: 2,
            symbol_len: 8,
            data_start,
        };
        let excitation: Vec<Complex> = (0..400).map(|i| Complex::cis(i as f64 * 0.37)).collect();
        let tag_bits: Vec<u8> = (0..nbits).map(|i| (i % 2) as u8).collect();
        let (out, consumed) = t.translate(&excitation, &tag_bits);
        assert!(consumed <= nbits, "case {case}");
        assert_eq!(out.len(), excitation.len(), "case {case}");
        // Phase translation never changes sample magnitudes.
        for (a, b) in out.iter().zip(excitation.iter()) {
            assert!((a.abs() - b.abs()).abs() < 1e-12, "case {case}");
        }
        // Applying the same translation again undoes it (π is an involution).
        let (back, _) = t.translate(&out, &tag_bits);
        for (a, b) in back.iter().zip(excitation.iter()) {
            assert!((*a - *b).abs() < 1e-9, "case {case}");
        }
    }
}

#[test]
fn xor_decode_recovers_any_tag_pattern() {
    for case in 0..CASES {
        let mut rng = case_rng(9, case);
        let n = 1 + rng.index(39);
        let pattern = rng.bits(n);
        // Clean-channel model of the full decode path: flips over windows.
        let n_dbps = 24usize;
        let window = 4usize;
        let orig = vec![0u8; n_dbps * (1 + pattern.len() * window)];
        let mut back = orig.clone();
        for (k, &bit) in pattern.iter().enumerate() {
            if bit == 1 {
                let lo = n_dbps * (1 + k * window);
                let hi = lo + n_dbps * window;
                for b in back[lo..hi].iter_mut() {
                    *b ^= 1;
                }
            }
        }
        let decoded = freerider::core::decoder::decode_wifi_binary(&orig, &back, n_dbps, window, 1);
        assert_eq!(decoded, pattern, "case {case}");
    }
}

#[test]
fn plm_messages_survive_arbitrary_ambient_interleaving() {
    for case in 0..CASES {
        let mut rng = case_rng(10, case);
        let msg = rng.bits(8);
        let n_ambient = rng.index(40);
        let ambient: Vec<f64> = (0..n_ambient)
            .map(|_| rng.f64_range(0.04e-3, 2.7e-3))
            .collect();
        let cfg = PlmConfig::default();
        let enc = PlmEncoder::new(cfg);
        let mut rx = PlmReceiver::new(cfg, 8);
        // Hostile prelude of ambient durations (skip any that alias).
        for &d in &ambient {
            if (d - cfg.l0_s).abs() > cfg.tolerance_s && (d - cfg.l1_s).abs() > cfg.tolerance_s {
                assert!(rx.push_pulse(d).is_none(), "case {case}");
            }
        }
        let mut got = None;
        for d in enc.encode(&msg) {
            got = got.or(rx.push_pulse(d));
        }
        assert_eq!(got, Some(msg), "case {case}");
    }
}

#[test]
fn jain_index_is_bounded() {
    for case in 0..CASES {
        let mut rng = case_rng(11, case);
        let n = 1 + rng.index(49);
        let alloc: Vec<f64> = (0..n).map(|_| rng.f64_range(0.0, 1e6)).collect();
        let j = freerider::mac::fairness::jain_index(&alloc);
        assert!(j <= 1.0 + 1e-9, "case {case}");
        assert!(j >= 1.0 / n as f64 - 1e-9, "case {case}");
    }
}
