//! Failure injection across the stack: corrupted preambles, truncation,
//! interference bursts, carrier offsets, and hostile control traffic.
//! The receivers must fail *cleanly* (typed errors, no panics) and
//! recover on the next good packet.

use freerider::channel::interference::Interferer;
use freerider::dsp::noise::NoiseSource;
use freerider::dsp::Complex;
use freerider::tag::plm::{PlmConfig, PlmReceiver};

#[test]
fn wifi_rx_survives_corrupted_preamble() {
    use freerider::wifi::{Receiver, RxConfig, Transmitter, TxConfig};
    let tx = Transmitter::new(TxConfig::default());
    let mut psdu = vec![0x42u8; 100];
    freerider::coding::crc::append_crc32(&mut psdu);
    let mut wave = tx.transmit(&psdu).unwrap();
    // Destroy the LTF region entirely.
    for z in wave[160..320].iter_mut() {
        *z = Complex::ZERO;
    }
    let rx = Receiver::new(RxConfig {
        sensitivity_dbm: -200.0,
        ..RxConfig::default()
    });
    assert!(rx.receive(&wave).is_err(), "must not sync on a dead LTF");

    // A subsequent good packet in the same buffer is still found.
    let mut buf = wave;
    buf.extend(vec![Complex::ZERO; 100]);
    buf.extend(tx.transmit(&psdu).unwrap());
    let pkt = rx.receive(&buf).expect("second packet decodable");
    assert!(pkt.fcs_valid);
}

#[test]
fn wifi_rx_rejects_mid_packet_cut() {
    use freerider::wifi::{Receiver, RxConfig, RxError, Transmitter, TxConfig};
    let tx = Transmitter::new(TxConfig::default());
    let wave = tx.transmit(&[0u8; 200]).unwrap();
    let rx = Receiver::new(RxConfig {
        sensitivity_dbm: -200.0,
        ..RxConfig::default()
    });
    for cut in [400, 500, 800] {
        assert_eq!(
            rx.receive(&wave[..cut]).unwrap_err(),
            RxError::Truncated,
            "cut at {cut}"
        );
    }
}

#[test]
fn zigbee_rx_ignores_pure_interference() {
    use freerider::zigbee::{Receiver, RxConfig, RxError};
    let mut buf = NoiseSource::new(3, 1e-9).take(8000);
    let mut intf = Interferer::new(-60.0, 0.0, 0.8, 500, 4);
    intf.add_to(&mut buf);
    let rx = Receiver::new(RxConfig::default());
    assert!(matches!(
        rx.receive(&buf).unwrap_err(),
        RxError::NoPreamble | RxError::NoSfd
    ));
}

#[test]
fn ble_rx_survives_burst_interference_mid_packet() {
    use freerider::ble::{Receiver, RxConfig, Transmitter};
    let tx = Transmitter::new();
    let wave = tx.transmit(&[0x5A; 30]).unwrap();
    // Scale to a healthy level and inject a strong burst into the payload.
    let mut buf: Vec<Complex> = wave
        .iter()
        .map(|&z| z * freerider::dsp::db::field_scale(-80.0))
        .collect();
    let mut ns = NoiseSource::new(5, freerider::dsp::db::dbm_to_mw(-78.0));
    for z in buf[1200..1600].iter_mut() {
        *z += ns.sample();
    }
    let rx = Receiver::new(RxConfig::default());
    match rx.receive(&buf) {
        Ok(pkt) => {
            // Sync (early in the packet) survived; the burst corrupts
            // payload bits → CRC fails but the frame is still delimited.
            assert!(!pkt.crc_valid || pkt.packet.payload == vec![0x5A; 30]);
        }
        Err(_) => {
            // Also acceptable: the burst broke bit slicing entirely.
        }
    }
}

#[test]
fn wifi_rx_tolerates_cfo_within_capture_range() {
    use freerider::wifi::{Receiver, RxConfig, Transmitter, TxConfig};
    let tx = Transmitter::new(TxConfig::default());
    let mut psdu = vec![0x17u8; 150];
    freerider::coding::crc::append_crc32(&mut psdu);
    let wave = tx.transmit(&psdu).unwrap();
    let rx = Receiver::new(RxConfig {
        sensitivity_dbm: -200.0,
        ..RxConfig::default()
    });
    // ±80 kHz: well inside the ±156 kHz fine-CFO capture range.
    for cfo_hz in [-80e3, -20e3, 20e3, 80e3] {
        let f = cfo_hz / 20e6;
        let shifted: Vec<Complex> = wave
            .iter()
            .enumerate()
            .map(|(n, &z)| z * Complex::cis(std::f64::consts::TAU * f * n as f64))
            .collect();
        let pkt = rx
            .receive(&shifted)
            .unwrap_or_else(|e| panic!("cfo {cfo_hz}: {e}"));
        assert!(pkt.fcs_valid, "cfo {cfo_hz}");
        assert!((pkt.cfo - f).abs() < 2e-5);
    }
}

#[test]
fn plm_decoder_survives_hostile_pulse_trains() {
    // A flood of adversarial pulse widths must never produce a spurious
    // control message (the preamble + tolerance matching is the defence).
    let cfg = PlmConfig::default();
    let mut rx = PlmReceiver::new(cfg, 10);
    let mut produced = 0;
    for k in 0..10_000usize {
        // Durations sweeping through every regime except exact L0/L1.
        let d = 0.3e-3 + (k % 97) as f64 * 17e-6;
        let near_l0 = (d - cfg.l0_s).abs() <= cfg.tolerance_s;
        let near_l1 = (d - cfg.l1_s).abs() <= cfg.tolerance_s;
        if near_l0 || near_l1 {
            continue; // skip genuinely valid widths
        }
        if rx.push_pulse(d).is_some() {
            produced += 1;
        }
    }
    assert_eq!(produced, 0, "hostile pulses must not forge messages");
}

#[test]
fn interferer_bursts_degrade_but_do_not_wedge_wifi_links() {
    use freerider::channel::channel::{Channel, Fading};
    use freerider::wifi::{Receiver, RxConfig, Transmitter, TxConfig};
    let tx = Transmitter::new(TxConfig::default());
    let rx = Receiver::new(RxConfig::default());
    let mut psdu = vec![0x11u8; 120];
    freerider::coding::crc::append_crc32(&mut psdu);
    let mut decoded = 0;
    for seed in 0..4u64 {
        let wave = tx.transmit(&psdu).unwrap();
        let mut ch = Channel::new(-70.0, -95.0, Fading::None, seed);
        let mut buf = ch.propagate_padded(&wave, 200);
        let mut intf = Interferer::new(-68.0, 0.0, 0.5, 2000, seed ^ 9);
        intf.add_to(&mut buf);
        if rx.receive(&buf).is_ok() {
            decoded += 1;
        }
    }
    // Co-channel-level bursts hit about half the packets; the link limps
    // but the receiver never panics or loops.
    assert!(decoded >= 1, "some packets should still make it");
}
