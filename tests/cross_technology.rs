//! Cross-technology integration: the property the paper's title claims —
//! one tag design, three commodity radios — exercised side by side, plus
//! multi-packet receive paths under tag modification.

use freerider::channel::channel::{Channel, Fading};
use freerider::channel::BackscatterBudget;
use freerider::core::link::{BleLink, LinkConfig, WifiLink, ZigbeeLink};
use freerider::rt::Rng64;
use freerider::tag::translator::PhaseTranslator;

#[test]
fn one_tag_design_rides_all_three_radios() {
    // §1: "the technique we invent should be general enough such that the
    // tag can rely on multiple types of radios". Same seed, same tag-bit
    // source, three technologies — all deliver.
    let mk = |budget: BackscatterBudget, d: f64, payload: usize| LinkConfig {
        payload_len: payload,
        packets: 3,
        fading: Fading::None,
        ..LinkConfig::new(budget, d, 77)
    };
    let wifi = WifiLink::new(mk(BackscatterBudget::wifi_los(), 5.0, 400)).run();
    let zigbee = ZigbeeLink::new(mk(BackscatterBudget::zigbee_los(), 5.0, 80)).run();
    let ble = BleLink::new(mk(BackscatterBudget::ble_los(), 3.0, 37)).run();

    for (name, stats) in [("wifi", &wifi), ("zigbee", &zigbee), ("ble", &ble)] {
        assert_eq!(stats.packets_decoded, 3, "{name}");
        assert_eq!(stats.productive_ok, 3, "{name} productive");
        assert!(stats.ber() < 0.05, "{name} BER {}", stats.ber());
    }
    // And the rates land in the paper's order: WiFi ≈ BLE ≫ ZigBee.
    assert!(wifi.throughput_bps() > 3.0 * zigbee.throughput_bps());
    assert!(ble.throughput_bps() > 3.0 * zigbee.throughput_bps());
}

#[test]
fn receive_all_separates_tagged_back_to_back_packets() {
    use freerider::wifi::{Mpdu, Receiver, RxConfig, Transmitter, TxConfig};
    let mut rng = Rng64::new(55);
    let tx = Transmitter::new(TxConfig::default());
    let translator = PhaseTranslator::wifi_binary();
    let rx = Receiver::new(RxConfig {
        sensitivity_dbm: -200.0,
        ..RxConfig::default()
    });
    let mut ch = Channel::new(-60.0, -95.0, Fading::None, 56);

    // Three tagged packets separated by noise gaps in one buffer.
    let mut buf = Vec::new();
    let mut all_bits = Vec::new();
    for i in 0..3u8 {
        let frame = Mpdu::build(
            freerider::wifi::frame::MacAddr::local(1),
            freerider::wifi::frame::MacAddr::local(2),
            i as u16,
            &[i; 150],
        );
        let wave = tx.transmit(frame.as_bytes()).unwrap();
        let bits = rng.bits(translator.capacity(wave.len()));
        let (tagged, _) = translator.translate(&wave, &bits);
        all_bits.push(bits);
        buf.extend(ch.propagate_padded(&tagged, 250));
    }

    let pkts = rx.receive_all(&buf);
    assert_eq!(pkts.len(), 3, "all three tagged packets found");
    for (i, p) in pkts.iter().enumerate() {
        // Tag modification breaks the FCS by design…
        assert!(!p.fcs_valid, "packet {i}");
        // …but the payload bytes of the header region still identify it.
        assert_eq!(p.signal.length, 150 + 28);
    }
}

#[test]
fn zigbee_and_ble_tags_do_not_confuse_the_wrong_receiver() {
    // A ZigBee waveform should not decode at a BLE receiver and vice
    // versa, even at high SNR — the codebooks are disjoint.
    let ztx = freerider::zigbee::Transmitter::new();
    let zwave = ztx.transmit(&[0x42; 30]).unwrap();
    let brx = freerider::ble::Receiver::new(freerider::ble::RxConfig {
        sensitivity_dbm: -200.0,
        ..freerider::ble::RxConfig::default()
    });
    match brx.receive(&zwave) {
        Err(_) => {}
        Ok(pkt) => assert!(!pkt.crc_valid, "BLE must not validate a ZigBee frame"),
    }

    let btx = freerider::ble::Transmitter::new();
    let bwave = btx.transmit(&[0x24; 20]).unwrap();
    let zrx = freerider::zigbee::Receiver::new(freerider::zigbee::RxConfig {
        sensitivity_dbm: -200.0,
        ..freerider::zigbee::RxConfig::default()
    });
    match zrx.receive(&bwave) {
        Err(_) => {}
        Ok(pkt) => assert!(!pkt.fcs_valid, "ZigBee must not validate a BLE frame"),
    }
}

#[test]
fn deterministic_end_to_end_replay() {
    // The whole stack is seeded: identical configs produce bit-identical
    // statistics — the reproducibility property EXPERIMENTS.md rests on.
    let cfg = LinkConfig {
        payload_len: 300,
        packets: 4,
        ..LinkConfig::new(BackscatterBudget::wifi_los(), 17.0, 4242)
    };
    let a = WifiLink::new(cfg.clone()).run();
    let b = WifiLink::new(cfg).run();
    assert_eq!(a.tag_bits_sent, b.tag_bits_sent);
    assert_eq!(a.tag_bits_correct, b.tag_bits_correct);
    assert_eq!(a.packets_decoded, b.packets_decoded);
    assert!((a.throughput_bps() - b.throughput_bps()).abs() < 1e-9);
}
