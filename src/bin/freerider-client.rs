//! `freerider-client` — drive a running `freerider serve` instance.
//!
//! ```sh
//! freerider-client --addr 127.0.0.1:7973 submit --tags 100 --rounds 400 --watch
//! freerider-client --addr 127.0.0.1:7973 status 1
//! freerider-client --addr 127.0.0.1:7973 list
//! freerider-client --addr 127.0.0.1:7973 cancel 1
//! freerider-client --addr 127.0.0.1:7973 stats --json
//! freerider-client --addr 127.0.0.1:7973 top --interval 1
//! freerider-client --addr 127.0.0.1:7973 shutdown
//! ```
//!
//! `submit` builds a square-grid deployment of `--tags` tags around the
//! exciter with two flanking receivers — enough to exercise a server
//! end-to-end without a scene file. `--watch` streams per-round progress
//! lines (and per-tag snapshots with `--snapshot-every N`) until the
//! final report arrives.

use freerider::net::{Deployment, SimConfig};
use freerider::serve::client::StreamEvent;
use freerider::serve::server::DEFAULT_ADDR;
use freerider::serve::wire::JobSpec;
use freerider::serve::Client;
use std::collections::BTreeMap;
use std::net::TcpStream;
use std::process::ExitCode;

/// Minimal `--flag value` parser (mirrors the `freerider` bin's).
#[derive(Debug, Default)]
struct Args {
    positional: Vec<String>,
    flags: BTreeMap<String, Vec<String>>,
}

impl Args {
    fn parse<I: Iterator<Item = String>>(iter: I) -> Result<Args, String> {
        let mut out = Args::default();
        let mut iter = iter.peekable();
        while let Some(a) = iter.next() {
            if let Some(name) = a.strip_prefix("--") {
                // Value-less boolean flags.
                if matches!(name, "watch" | "json") {
                    out.flags
                        .entry(name.to_string())
                        .or_default()
                        .push(String::new());
                    continue;
                }
                let value = iter
                    .next()
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                out.flags.entry(name.to_string()).or_default().push(value);
            } else {
                out.positional.push(a);
            }
        }
        Ok(out)
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name).and_then(|v| v.last()) {
            Some(s) => s
                .parse()
                .map_err(|_| format!("--{name}: cannot parse `{s}`")),
            None => Ok(default),
        }
    }

    fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    fn job_id(&self, cmd: &str) -> Result<u64, String> {
        self.positional
            .get(1)
            .ok_or_else(|| format!("usage: freerider-client {cmd} <job-id>"))?
            .parse()
            .map_err(|_| "job id must be an integer".to_string())
    }
}

/// `--tags N` tags on a near-square grid, 0.4 m pitch, centred on the
/// exciter, with receivers 6 m to either side.
fn grid_deployment(tags: usize) -> Deployment {
    let mut d = Deployment::open_plan()
        .with_receiver(6.0, 0.0)
        .with_receiver(-6.0, 0.0);
    let cols = (tags as f64).sqrt().ceil() as usize;
    for i in 0..tags {
        let x = (i % cols) as f64 * 0.4 - cols as f64 * 0.2;
        let y = (i / cols) as f64 * 0.4 - (tags / cols) as f64 * 0.2;
        d = d.with_tag(x, y);
    }
    d
}

fn cmd_submit(client: &mut Client<TcpStream>, a: &Args) -> Result<(), String> {
    let tags = a.get("tags", 100usize)?;
    if tags == 0 {
        return Err("--tags must be positive".to_string());
    }
    let watch = a.has("watch");
    let spec = JobSpec {
        config: SimConfig {
            rounds: a.get("rounds", 400usize)?,
            seed: a.get("seed", 1u64)?,
            ..SimConfig::default()
        },
        deployment: grid_deployment(tags),
        stream: watch,
        snapshot_every: a.get("snapshot-every", 0usize)?,
    };
    let job = client.submit(&spec).map_err(|e| e.to_string())?;
    println!(
        "job {job} accepted ({tags} tags, {} rounds)",
        spec.config.rounds
    );
    if !watch {
        return Ok(());
    }
    loop {
        match client.next_event().map_err(|e| e.to_string())? {
            StreamEvent::Progress(p) => println!(
                "progress round {}/{} t={:.2}s slots={} participants={} delivered={} bits={} reports={}",
                p.round + 1,
                p.rounds,
                p.time_s,
                p.n_slots,
                p.participants,
                p.delivered_slots,
                p.delivered_bits,
                p.reports_delivered
            ),
            StreamEvent::Tags { round, tags } => {
                let served = tags.iter().filter(|t| t.reports_delivered > 0).count();
                println!(
                    "snapshot round {}: {served}/{} tags have delivered reports",
                    round + 1,
                    tags.len()
                );
            }
            StreamEvent::Result { report, .. } => {
                let servable = report.tags.iter().filter(|t| t.servable).count();
                println!(
                    "result: {}/{} servable tags, aggregate {:.2} kbps, fairness {:.3}, {:.1} s simulated",
                    servable,
                    report.tags.len(),
                    report.aggregate_bps / 1e3,
                    report.fairness,
                    report.total_time_s
                );
            }
            StreamEvent::Stats(s) => println!(
                "server stats: jobs running={} queued={} frames rx={} tx={} evictions={}",
                s.gauge("jobs.running"),
                s.gauge("jobs.queued"),
                s.counter("frames.rx.submit_job"),
                s.counter("frames.tx.progress"),
                s.counter("subs.evictions")
            ),
            StreamEvent::End { job } => {
                println!("stream end (job {job})");
                return Ok(());
            }
        }
    }
}

/// Renders one metrics snapshot as an aligned table.
fn render_stats(stats: &freerider::serve::StatsReport) -> String {
    let mut out = String::new();
    let width = stats
        .counters
        .iter()
        .map(|(k, _)| k.len())
        .chain(stats.gauges.iter().map(|(k, _)| k.len()))
        .max()
        .unwrap_or(12)
        .max(12);
    out.push_str("counters (deterministic, monotonic):\n");
    if stats.counters.is_empty() {
        out.push_str("  (none yet)\n");
    }
    for (k, v) in &stats.counters {
        out.push_str(&format!("  {k:<width$}  {v:>12}\n"));
    }
    out.push_str("gauges (point-in-time):\n");
    for (k, v) in &stats.gauges {
        out.push_str(&format!("  {k:<width$}  {v:>12}\n"));
    }
    out.push_str("latency (wall-clock):\n");
    for (k, l) in &stats.latency {
        out.push_str(&format!(
            "  {k:<width$}  n={} p50={} p90={} p99={} max={} (ns)\n",
            l.count, l.p50, l.p90, l.p99, l.max
        ));
    }
    out
}

fn cmd_stats(client: &mut Client<TcpStream>, a: &Args) -> Result<(), String> {
    if a.has("json") {
        // The exact payload bytes as served — what the verify-gate smoke
        // test and scripted consumers parse.
        let raw = client.stats_raw().map_err(|e| e.to_string())?;
        let text = String::from_utf8(raw).map_err(|_| "stats payload not UTF-8".to_string())?;
        println!("{text}");
        return Ok(());
    }
    let stats = client.stats().map_err(|e| e.to_string())?;
    print!("{}", render_stats(&stats));
    Ok(())
}

/// Renders the per-frame-type latency breakout (`frame.handle_ns.<type>`
/// rows) as a percentile table, one frame type per row. Returns an empty
/// string until the server has timed at least one typed frame.
fn render_type_latency(stats: &freerider::serve::StatsReport) -> String {
    const PREFIX: &str = "frame.handle_ns.";
    let rows: Vec<(&str, &freerider::serve::LatencySummary)> = stats
        .latency
        .iter()
        .filter_map(|(k, l)| k.strip_prefix(PREFIX).map(|t| (t, l)))
        .collect();
    if rows.is_empty() {
        return String::new();
    }
    let width = rows
        .iter()
        .map(|(t, _)| t.len())
        .max()
        .unwrap_or(10)
        .max(10);
    let mut out = String::new();
    out.push_str(&format!(
        "per-type latency (ns):\n  {:<width$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}\n",
        "type", "count", "p50", "p90", "p99", "max"
    ));
    for (t, l) in rows {
        out.push_str(&format!(
            "  {t:<width$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}\n",
            l.count, l.p50, l.p90, l.p99, l.max
        ));
    }
    out
}

fn cmd_top(client: &mut Client<TcpStream>, a: &Args) -> Result<(), String> {
    let interval: f64 = a.get("interval", 2.0)?;
    if !interval.is_finite() || interval <= 0.0 {
        return Err("--interval must be positive".to_string());
    }
    let iters: usize = a.get("iters", 0usize)?; // 0 = until interrupted
    let mut done = 0usize;
    loop {
        let h = client.health().map_err(|e| e.to_string())?;
        let stats = client.stats().map_err(|e| e.to_string())?;
        // Clear screen + home, like top(1); harmless when redirected.
        print!("\x1b[2J\x1b[H");
        println!(
            "freerider-serve  {}  sessions={} jobs: queued={} running={}  frames: rx={} tx={}",
            if h.ok { "up" } else { "DOWN" },
            h.sessions_active,
            h.jobs_queued,
            h.jobs_running,
            h.frames_rx,
            h.frames_tx
        );
        println!();
        print!("{}", render_type_latency(&stats));
        print!("{}", render_stats(&stats));
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        done += 1;
        if iters > 0 && done >= iters {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_secs_f64(interval));
    }
}

fn run() -> Result<(), String> {
    let a = Args::parse(std::env::args().skip(1))?;
    let addr = a.get("addr", DEFAULT_ADDR.to_string())?;
    let cmd = a.positional.first().map(String::as_str).unwrap_or("");
    if matches!(cmd, "" | "help" | "--help") {
        println!("{}", usage());
        return Ok(());
    }
    let mut client = Client::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    match cmd {
        "submit" => cmd_submit(&mut client, &a),
        "status" => {
            let s = client
                .status(a.job_id("status")?)
                .map_err(|e| e.to_string())?;
            println!(
                "job {} {} round {}/{} tags {}",
                s.job, s.state, s.rounds_done, s.rounds, s.tags
            );
            Ok(())
        }
        "cancel" => {
            let id = a.job_id("cancel")?;
            let landed = client.cancel(id).map_err(|e| e.to_string())?;
            println!(
                "job {id} {}",
                if landed {
                    "cancelled"
                } else {
                    "already finished"
                }
            );
            Ok(())
        }
        "list" => {
            let jobs = client.list().map_err(|e| e.to_string())?;
            if jobs.is_empty() {
                println!("no jobs");
            }
            for s in jobs {
                println!(
                    "job {} {} round {}/{} tags {}",
                    s.job, s.state, s.rounds_done, s.rounds, s.tags
                );
            }
            Ok(())
        }
        "stats" => cmd_stats(&mut client, &a),
        "health" => {
            let h = client.health().map_err(|e| e.to_string())?;
            println!(
                "{} jobs_queued={} jobs_running={} sessions_active={} frames_rx={} frames_tx={}",
                if h.ok { "ok" } else { "DOWN" },
                h.jobs_queued,
                h.jobs_running,
                h.sessions_active,
                h.frames_rx,
                h.frames_tx
            );
            Ok(())
        }
        "top" => cmd_top(&mut client, &a),
        "shutdown" => {
            client.shutdown().map_err(|e| e.to_string())?;
            println!("server shutting down");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn usage() -> &'static str {
    "freerider-client — drive a running `freerider serve`\n\
     \n\
     USAGE:\n\
       freerider-client [--addr host:port] submit [--tags N] [--rounds N] [--seed S]\n\
                        [--snapshot-every N] [--watch]\n\
       freerider-client [--addr host:port] status <job-id>\n\
       freerider-client [--addr host:port] cancel <job-id>\n\
       freerider-client [--addr host:port] list\n\
       freerider-client [--addr host:port] stats [--json]\n\
       freerider-client [--addr host:port] health\n\
       freerider-client [--addr host:port] top [--interval SECS] [--iters N]\n\
       freerider-client [--addr host:port] shutdown\n\
     \n\
     `stats` prints one server metrics snapshot (--json emits the raw\n\
     Stats payload); `top` polls it live, like top(1).\n"
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            ExitCode::FAILURE
        }
    }
}
