//! `freerider` — the command-line front end to the workspace.
//!
//! ```sh
//! freerider link wifi --distance 10 --packets 20
//! freerider survey zigbee --distances 2,8,14,20
//! freerider coverage --exciter 0,0 --rx 4,0 --rx -4,0 --grid 24x16 --cell 1
//! freerider trace /tmp/capture.friq
//! freerider power
//! ```
//!
//! Argument parsing is hand-rolled (the workspace's dependency policy
//! excludes clap); see [`args::Args`].

use freerider::channel::geometry::Point;
use freerider::channel::BackscatterBudget;
use freerider::core::experiments::{distance_sweep, Technology};
use freerider::core::link::{BleLink, LinkConfig, WifiLink, ZigbeeLink};
use freerider::dsp::trace::IqTrace;
use freerider::net::coverage::coverage_map;
use freerider::net::{Deployment, LinkModel};
use freerider::serve::server::{ServeConfig, Server};
use freerider::tag::power::{PowerModel, TranslatorKind};
use std::process::ExitCode;

mod args {
    //! A minimal `--flag value` argument parser.

    use std::collections::BTreeMap;

    /// Parsed arguments: positionals plus `--key value` flags (repeatable).
    #[derive(Debug, Default)]
    pub struct Args {
        /// Positional arguments in order.
        pub positional: Vec<String>,
        /// Flag values; repeated flags accumulate.
        pub flags: BTreeMap<String, Vec<String>>,
    }

    impl Args {
        /// Parses an iterator of arguments.
        pub fn parse<I: Iterator<Item = String>>(iter: I) -> Result<Args, String> {
            let mut out = Args::default();
            let mut iter = iter.peekable();
            while let Some(a) = iter.next() {
                if let Some(name) = a.strip_prefix("--") {
                    let value = iter
                        .next()
                        .ok_or_else(|| format!("flag --{name} needs a value"))?;
                    out.flags.entry(name.to_string()).or_default().push(value);
                } else {
                    out.positional.push(a);
                }
            }
            Ok(out)
        }

        /// Last value of a flag, parsed.
        pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
            match self.flags.get(name).and_then(|v| v.last()) {
                Some(s) => s
                    .parse()
                    .map_err(|_| format!("--{name}: cannot parse `{s}`")),
                None => Ok(default),
            }
        }

        /// All values of a repeatable flag.
        pub fn get_all(&self, name: &str) -> &[String] {
            self.flags.get(name).map(Vec::as_slice).unwrap_or(&[])
        }
    }

    /// Parses `x,y` into a coordinate pair.
    pub fn parse_point(s: &str) -> Result<(f64, f64), String> {
        let mut it = s.split(',');
        let x = it
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("bad point `{s}` (expected x,y)"))?;
        let y = it
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("bad point `{s}` (expected x,y)"))?;
        if it.next().is_some() {
            return Err(format!("bad point `{s}` (expected x,y)"));
        }
        Ok((x, y))
    }

    /// Parses `a,b,c` into floats.
    pub fn parse_list(s: &str) -> Result<Vec<f64>, String> {
        s.split(',')
            .map(|v| v.parse().map_err(|_| format!("bad number `{v}`")))
            .collect()
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn parses_flags_and_positionals() {
            let a = Args::parse(
                [
                    "link",
                    "wifi",
                    "--distance",
                    "10",
                    "--rx",
                    "1,2",
                    "--rx",
                    "3,4",
                ]
                .iter()
                .map(|s| s.to_string()),
            )
            .unwrap();
            assert_eq!(a.positional, vec!["link", "wifi"]);
            assert_eq!(a.get("distance", 0.0).unwrap(), 10.0);
            assert_eq!(a.get_all("rx"), &["1,2".to_string(), "3,4".to_string()]);
            assert_eq!(a.get("missing", 7usize).unwrap(), 7);
        }

        #[test]
        fn rejects_dangling_flag() {
            assert!(Args::parse(["--oops"].iter().map(|s| s.to_string())).is_err());
        }

        #[test]
        fn points_and_lists() {
            assert_eq!(parse_point("1.5,-2").unwrap(), (1.5, -2.0));
            assert!(parse_point("1").is_err());
            assert!(parse_point("1,2,3").is_err());
            assert_eq!(parse_list("1,2.5,3").unwrap(), vec![1.0, 2.5, 3.0]);
            assert!(parse_list("1,x").is_err());
        }
    }
}

fn technology(name: &str) -> Result<(Technology, BackscatterBudget), String> {
    match name {
        "wifi" => Ok((Technology::Wifi, BackscatterBudget::wifi_los())),
        "wifi-nlos" => Ok((Technology::Wifi, BackscatterBudget::wifi_nlos())),
        "zigbee" => Ok((Technology::Zigbee, BackscatterBudget::zigbee_los())),
        "ble" | "bluetooth" => Ok((Technology::Ble, BackscatterBudget::ble_los())),
        other => Err(format!(
            "unknown technology `{other}` (wifi|wifi-nlos|zigbee|ble)"
        )),
    }
}

fn cmd_link(a: &args::Args) -> Result<(), String> {
    let tech_name = a.positional.get(1).map(String::as_str).unwrap_or("wifi");
    let (tech, budget) = technology(tech_name)?;
    let distance = a.get("distance", 5.0)?;
    let packets = a.get("packets", 10usize)?;
    let payload = a.get("payload", 500usize)?;
    let seed = a.get("seed", 1u64)?;
    let cfg = LinkConfig {
        payload_len: payload,
        packets,
        ..LinkConfig::new(budget, distance, seed)
    };
    let stats = match tech {
        Technology::Wifi => WifiLink::new(cfg).run(),
        Technology::Zigbee => ZigbeeLink::new(cfg).run(),
        Technology::Ble => BleLink::new(cfg).run(),
    };
    println!("{tech_name} backscatter link, tag at 1 m, receiver at {distance} m:");
    println!(
        "  packets            {} sent, {} decoded",
        stats.packets_sent, stats.packets_decoded
    );
    println!("  productive frames  {}", stats.productive_ok);
    println!(
        "  tag throughput     {:.1} kbps",
        stats.throughput_bps() / 1e3
    );
    println!("  tag BER            {:.2e}", stats.ber());
    println!("  budget RSSI        {:.1} dBm", stats.budget_rssi_dbm);
    Ok(())
}

fn cmd_survey(a: &args::Args) -> Result<(), String> {
    let tech_name = a.positional.get(1).map(String::as_str).unwrap_or("wifi");
    let (tech, budget) = technology(tech_name)?;
    let default = "2,6,10,14,18,22".to_string();
    let distances = args::parse_list(
        a.flags
            .get("distances")
            .and_then(|v| v.last())
            .unwrap_or(&default),
    )?;
    let packets = a.get("packets", 8usize)?;
    let payload = a.get("payload", 400usize)?;
    let seed = a.get("seed", 1u64)?;
    println!("{tech_name} survey ({packets} packets × {payload} B per point):");
    println!("  dist(m)   tput(kbps)        BER    PRR   RSSI(dBm)");
    for p in distance_sweep(tech, budget, &distances, packets, payload, seed) {
        println!(
            "  {:>7.1}   {:>10.1}   {:>8.1e}   {:>4.2}   {:>9.1}",
            p.distance_m,
            p.throughput_bps / 1e3,
            p.ber,
            p.prr,
            p.rssi_dbm
        );
    }
    Ok(())
}

fn cmd_coverage(a: &args::Args) -> Result<(), String> {
    let (ex, ey) = args::parse_point(
        a.flags
            .get("exciter")
            .and_then(|v| v.last())
            .map(String::as_str)
            .unwrap_or("0,0"),
    )?;
    let mut d = Deployment::open_plan();
    d.exciter.position = Point::new(ex, ey);
    d.exciter.tx_power_dbm = a.get("power", 11.0)?;
    for rx in a.get_all("rx") {
        let (x, y) = args::parse_point(rx)?;
        d = d.with_receiver(x, y);
    }
    if d.receivers.is_empty() {
        return Err("need at least one --rx x,y".to_string());
    }
    let grid = a.get("grid", "24x16".to_string())?;
    let (cols, rows) = grid
        .split_once('x')
        .and_then(|(c, r)| Some((c.parse().ok()?, r.parse().ok()?)))
        .ok_or_else(|| format!("bad --grid `{grid}` (expected COLSxROWS)"))?;
    let cell: f64 = a.get("cell", 1.0)?;
    let origin = Point::new(ex - cols as f64 * cell / 2.0, ey - rows as f64 * cell / 2.0);
    let model = LinkModel::default();
    let map = coverage_map(&d, &model, origin, cell, cols, rows);
    println!("{}", map.render(&d));
    println!(
        "≥30 kbps coverage: {:.0} % of the {}×{} m area",
        map.covered_fraction(30e3) * 100.0,
        cols as f64 * cell,
        rows as f64 * cell
    );
    Ok(())
}

fn cmd_trace(a: &args::Args) -> Result<(), String> {
    let path = a
        .positional
        .get(1)
        .ok_or("usage: freerider trace <file.friq>")?;
    let t = IqTrace::load(std::path::Path::new(path)).map_err(|e| e.to_string())?;
    println!("{path}:\n{}", t.summary());
    Ok(())
}

fn cmd_serve(a: &args::Args) -> Result<(), String> {
    let mut cfg = ServeConfig::from_env();
    if let Some(addr) = a.flags.get("addr").and_then(|v| v.last()) {
        cfg.addr = addr.clone();
    }
    cfg.max_subs = a.get("max-subs", cfg.max_subs)?;
    cfg.queue_cap = a.get("queue", cfg.queue_cap)?;
    cfg.threads = a.get("threads", cfg.threads)?;
    cfg.stats_every = a.get("stats-every", cfg.stats_every)?;
    let trace_out: String = a.get("trace-out", String::new())?;
    let server = Server::bind(&cfg).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    // The smoke test parses this line to learn the ephemeral port.
    println!("freerider-serve listening on {addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.run().map_err(|e| e.to_string())?;
    // After an orderly shutdown, export whatever the FREERIDER_TRACE
    // flight recorder captured (serve.session / serve.frame.* /
    // serve.job packets) as a Chrome trace for chrome://tracing.
    if !trace_out.is_empty() {
        let records = freerider::telemetry::trace::drain();
        let mut groups: std::collections::BTreeMap<&str, Vec<freerider::telemetry::PacketRecord>> =
            std::collections::BTreeMap::new();
        for r in records {
            groups.entry(r.scope).or_default().push(r);
        }
        let refs: Vec<(&str, &[freerider::telemetry::PacketRecord])> = groups
            .iter()
            .map(|(scope, rs)| (*scope, rs.as_slice()))
            .collect();
        let json = freerider::telemetry::chrome_trace_json(&refs);
        std::fs::write(&trace_out, json).map_err(|e| format!("write {trace_out}: {e}"))?;
        println!("wrote server trace to {trace_out}");
    }
    Ok(())
}

fn cmd_power(_a: &args::Args) -> Result<(), String> {
    let m = PowerModel::default();
    println!("FreeRider tag power budget (§3.3):");
    for (kind, label, shift) in [
        (TranslatorKind::WifiPhase, "WiFi  (20 MHz shift)", 20e6),
        (TranslatorKind::ZigbeePhase, "ZigBee(20 MHz shift)", 20e6),
        (TranslatorKind::BleFsk, "BLE   (500 kHz toggle)", 500e3),
    ] {
        println!("  {label}: {:>5.1} µW", m.total_uw(kind, shift));
    }
    Ok(())
}

fn usage() -> &'static str {
    "freerider — backscatter communication using commodity radios\n\
     \n\
     USAGE:\n\
       freerider link [wifi|wifi-nlos|zigbee|ble] [--distance M] [--packets N] [--payload B] [--seed S]\n\
       freerider survey [wifi|zigbee|ble] [--distances 2,6,10] [--packets N] [--payload B]\n\
       freerider coverage --rx x,y [--rx x,y ...] [--exciter x,y] [--power dBm] [--grid CxR] [--cell M]\n\
       freerider trace <file.friq>\n\
       freerider power\n\
       freerider serve [--addr host:port] [--max-subs N] [--queue N] [--threads N]\n\
                       [--stats-every N] [--trace-out PATH]\n\
     \n\
     `freerider serve` hosts the deployment simulator as a framed-TCP\n\
     service; drive it with the `freerider-client` binary. With\n\
     --stats-every N it broadcasts a Stats snapshot to stream\n\
     subscribers every N rounds; with --trace-out PATH (and\n\
     FREERIDER_TRACE set) it writes a Chrome trace of the session/\n\
     frame/job flight-recorder packets on shutdown.\n"
}

fn main() -> ExitCode {
    let parsed = match args::Args::parse(std::env::args().skip(1)) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let cmd = parsed.positional.first().map(String::as_str).unwrap_or("");
    let result = match cmd {
        "link" => cmd_link(&parsed),
        "survey" => cmd_survey(&parsed),
        "coverage" => cmd_coverage(&parsed),
        "trace" => cmd_trace(&parsed),
        "power" => cmd_power(&parsed),
        "serve" => cmd_serve(&parsed),
        "" | "help" | "--help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            ExitCode::FAILURE
        }
    }
}
