//! # FreeRider
//!
//! A complete software reproduction of **"FreeRider: Backscatter
//! Communication Using Commodity Radios"** (Zhang, Josephson, Bharadia,
//! Katti — CoNEXT 2017): backscatter tags that piggyback their data on
//! live 802.11g/n WiFi, ZigBee and Bluetooth transmissions by *codeword
//! translation*, while those radios keep doing productive communication —
//! plus the first multi-tag backscatter MAC.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`dsp`] | `freerider-dsp` | complex math, FFT, FIR, oscillators, AWGN |
//! | [`coding`] | `freerider-coding` | scrambler, convolutional + Viterbi, interleaver, whitening, CRCs |
//! | [`wifi`] | `freerider-wifi` | full 802.11g OFDM PHY (TX + RX) |
//! | [`zigbee`] | `freerider-zigbee` | full 802.15.4 O-QPSK PHY (TX + RX) |
//! | [`ble`] | `freerider-ble` | Bluetooth LE GFSK PHY (TX + RX) |
//! | [`dot11b`] | `freerider-dot11b` | 802.11b DSSS PHY + the HitchHike baseline |
//! | [`channel`] | `freerider-channel` | path loss, link budgets, fading, interference |
//! | [`tag`] | `freerider-tag` | the tag: envelope detector, PLM, codeword translators, power model |
//! | [`mac`] | `freerider-mac` | Framed-Slotted-Aloha MAC + coordinator + Fig. 17 simulator |
//! | [`net`] | `freerider-net` | deployment-scale simulation: 2D sites, coverage maps, latency |
//! | [`serve`] | `freerider-serve` | the deployment simulator as a streaming framed-TCP service |
//! | [`core`] | `freerider-core` | end-to-end links, XOR decoding, every §4 experiment |
//! | [`rt`] | `freerider-rt` | deterministic RNG streams + parallel sweep executor |
//! | [`telemetry`] | `freerider-telemetry` | counters, histograms, span timers, event log, JSON output |
//!
//! ## Quickstart
//!
//! ```
//! use freerider::channel::BackscatterBudget;
//! use freerider::core::link::{LinkConfig, WifiLink};
//!
//! // A tag 1 m from a 6 Mbps WiFi transmitter, receiver 2 m away.
//! let cfg = LinkConfig {
//!     payload_len: 200,
//!     packets: 2,
//!     ..LinkConfig::new(BackscatterBudget::wifi_los(), 2.0, 42)
//! };
//! let stats = WifiLink::new(cfg).run();
//! assert!(stats.prr() > 0.99);            // backscatter decodes
//! assert!(stats.ber() < 1e-2);            // tag bits come out clean
//! assert_eq!(stats.productive_ok, 2);     // and WiFi stays productive
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use freerider_ble as ble;
pub use freerider_channel as channel;
pub use freerider_coding as coding;
pub use freerider_core as core;
pub use freerider_dot11b as dot11b;
pub use freerider_dsp as dsp;
pub use freerider_mac as mac;
pub use freerider_net as net;
pub use freerider_rt as rt;
pub use freerider_serve as serve;
pub use freerider_tag as tag;
pub use freerider_telemetry as telemetry;
pub use freerider_wifi as wifi;
pub use freerider_zigbee as zigbee;
