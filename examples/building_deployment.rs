//! Deployment planning: Fig. 1's office setting, end to end.
//!
//! A phone/AP as the exciting radio, two WiFi APs as backscatter
//! receivers behind a wall layout, and a dozen tags on desks. Prints the
//! coverage map an operator would plan with, then simulates a day-in-the-
//! life of the network (periodic sensor reports) and reports per-tag
//! service and latency.
//!
//! ```sh
//! cargo run --release --example building_deployment
//! ```

use freerider::channel::geometry::{Point, Wall};
use freerider::net::coverage::coverage_map;
use freerider::net::sim::SimConfig;
use freerider::net::{Deployment, DeploymentSim, LinkModel};

fn main() {
    println!("FreeRider deployment planner — two-room office\n");

    // An 16 × 10 m office: exciter in the left room, receivers in both
    // rooms, an interior wall with a doorway (two segments).
    let mut d = Deployment::open_plan()
        .with_receiver(-4.0, 0.0)
        .with_receiver(5.0, 2.0);
    d.exciter.position = Point::new(-2.0, 0.0);
    d.site = d
        .site
        .clone()
        .with_wall(Wall::new(Point::new(1.5, -5.0), Point::new(1.5, -0.8), 7.0))
        .with_wall(Wall::new(Point::new(1.5, 0.8), Point::new(1.5, 5.0), 7.0));

    // Desk tags in both rooms.
    let desks = [
        (-3.5, 1.5),
        (-3.0, -2.0),
        (-1.0, 2.5),
        (-0.5, -1.5),
        (0.5, 0.5),
        (1.0, -3.0),
        (2.5, 0.0), // doorway-adjacent, other room
        (3.0, 2.5),
        (3.5, -2.0),
        (4.5, 0.5),
        (-4.5, -3.5),
        (0.0, 4.0),
    ];
    for &(x, y) in &desks {
        d = d.with_tag(x, y);
    }

    // --- Coverage map. ---
    let model = LinkModel::default();
    let map = coverage_map(&d, &model, Point::new(-8.0, -5.0), 0.5, 32, 20);
    println!("coverage map (T = exciter, R = receivers; brighter = faster tag):");
    println!("{}", map.render(&d));
    println!(
        "cells supporting ≥ 30 kbps tags: {:.0} %",
        map.covered_fraction(30e3) * 100.0
    );
    println!(
        "cells supporting any service:    {:.0} %\n",
        map.covered_fraction(1e3) * 100.0
    );

    // --- Service simulation: each tag reports 128 bits every second. ---
    let sim = DeploymentSim::new(d.clone(), model, SimConfig::default());
    let r = sim.run();
    println!(
        "service over {:.1} s ({} rounds):",
        r.total_time_s,
        SimConfig::default().rounds
    );
    println!("  tag   pos(m)        servable  delivered(b)  reports  latency(ms)  PLM reach");
    for (i, t) in r.tags.iter().enumerate() {
        let (x, y) = desks[i];
        println!(
            "  {i:>3}   ({x:>4.1},{y:>4.1})   {}        {:>8}   {:>6}   {:>9}   {:>7.0} %",
            if t.servable { "yes" } else { "NO " },
            t.delivered_bits,
            t.reports_delivered,
            match t.mean_latency_s {
                Some(lat) => format!("{:.0}", lat * 1e3),
                None => "—".to_string(),
            },
            t.plm_reach * 100.0
        );
    }
    println!(
        "\naggregate {:.2} kbps, fairness {:.3} over servable tags",
        r.aggregate_bps / 1e3,
        r.fairness
    );
    let unservable = r.tags.iter().filter(|t| !t.servable).count();
    println!(
        "{unservable} of {} desks cannot be served from this exciter position — move the",
        r.tags.len()
    );
    println!("exciter or add one: the tag's RF front end needs ≥ −36.5 dBm of excitation.");
}
