//! Quickstart: one FreeRider tag riding on a live 802.11g link.
//!
//! Runs the full pipeline — a 6 Mbps WiFi transmitter sending real frames,
//! a tag 1 m away phase-translating them, a commodity OFDM receiver on the
//! adjacent channel, and the XOR decoder — and prints what the paper's
//! headline promises: the tag delivers ~60 kbps while the WiFi link keeps
//! delivering FCS-valid frames.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use freerider::channel::BackscatterBudget;
use freerider::core::link::{LinkConfig, WifiLink};

fn main() {
    println!("FreeRider quickstart — WiFi backscatter at 2 m\n");

    let cfg = LinkConfig {
        payload_len: 1000,
        packets: 20,
        ..LinkConfig::new(BackscatterBudget::wifi_los(), 2.0, 7)
    };
    println!(
        "excitation: 11 dBm 802.11g @ 6 Mbps, tag at {} m, receiver at {} m",
        cfg.d_tx_tag_m, cfg.d_tag_rx_m
    );
    println!(
        "link budget RSSI: {:.1} dBm\n",
        cfg.budget.rssi_dbm(1.0, 2.0)
    );

    let stats = WifiLink::new(cfg).run();

    println!("excitation packets sent ......... {}", stats.packets_sent);
    println!(
        "productive WiFi frames (FCS ok) . {} / {}",
        stats.productive_ok, stats.packets_sent
    );
    println!(
        "backscatter packets decoded ..... {} / {}",
        stats.packets_decoded, stats.packets_sent
    );
    println!("tag bits embedded ............... {}", stats.tag_bits_sent);
    println!(
        "tag throughput .................. {:.1} kbps",
        stats.throughput_bps() / 1e3
    );
    println!("tag bit error rate .............. {:.2e}", stats.ber());
    println!(
        "measured backscatter RSSI ....... {:.1} dBm",
        stats.measured_rssi_dbm
    );

    assert!(stats.prr() > 0.9, "expected a healthy close-range link");
    println!("\nThe excitation link stayed productive while the tag rode on it.");
}
