//! Site survey: where can a FreeRider deployment put its tags?
//!
//! Sweeps the tag-to-receiver distance for all three excitation
//! technologies (condensed Figs. 10/12/13) and prints the Fig. 14
//! operational-regime map.
//!
//! ```sh
//! cargo run --release --example site_survey
//! ```

use freerider::channel::BackscatterBudget;
use freerider::core::experiments::{distance_sweep, range_map, Technology};

fn main() {
    println!("FreeRider site survey\n");

    let runs = [
        (
            Technology::Wifi,
            BackscatterBudget::wifi_los(),
            vec![2.0, 10.0, 20.0, 30.0, 40.0],
            400usize,
        ),
        (
            Technology::Zigbee,
            BackscatterBudget::zigbee_los(),
            vec![2.0, 8.0, 14.0, 20.0],
            100,
        ),
        (
            Technology::Ble,
            BackscatterBudget::ble_los(),
            vec![2.0, 6.0, 10.0, 12.0],
            37,
        ),
    ];

    for (tech, budget, distances, payload) in runs {
        println!("— {tech:?} (LOS hallway) —");
        println!("  dist(m)   tput(kbps)   BER       PRR    RSSI(dBm)");
        for p in distance_sweep(tech, budget, &distances, 6, payload, 11) {
            println!(
                "  {:>6.1}   {:>9.1}   {:>8.1e}   {:>4.2}   {:>8.1}",
                p.distance_m,
                p.throughput_bps / 1e3,
                p.ber,
                p.prr,
                p.rssi_dbm
            );
        }
        println!();
    }

    println!("operational regime (Fig. 14): max RX-to-tag distance by TX-to-tag distance");
    println!("  TX→tag(m)    WiFi(m)   ZigBee(m)   Bluetooth(m)");
    let d1s = [0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 4.5];
    let wifi = range_map(Technology::Wifi, &BackscatterBudget::wifi_los(), &d1s);
    let zig = range_map(Technology::Zigbee, &BackscatterBudget::zigbee_los(), &d1s);
    let ble = range_map(Technology::Ble, &BackscatterBudget::ble_los(), &d1s);
    for i in 0..d1s.len() {
        println!(
            "  {:>8.1}   {:>7.1}   {:>9.1}   {:>12.1}",
            d1s[i], wifi[i].max_d_tag_rx_m, zig[i].max_d_tag_rx_m, ble[i].max_d_tag_rx_m
        );
    }
    println!("\n(paper: WiFi reaches 42 m at 1 m TX→tag and ~8 m at 4 m;");
    println!(" ZigBee/Bluetooth regimes end at ~2 m / ~1.5 m TX→tag)");
}
