//! Coexistence check (§4.4): does FreeRider hurt the WiFi network it
//! rides on, and does ambient WiFi hurt FreeRider?
//!
//! ```sh
//! cargo run --release --example coexistence
//! ```

use freerider::core::coexist::{
    backscatter_coexistence, wifi_throughput_cdf, CoexistTech, TAG_LEAK_INTO_WIFI_DBM,
};

fn main() {
    println!("FreeRider coexistence with WiFi networks\n");

    // Fig. 15: WiFi throughput with and without a tag backscattering.
    println!("— Does backscatter impact WiFi? (Fig. 15) —");
    let mut without = wifi_throughput_cdf(None, 2000, 1);
    let mut with = wifi_throughput_cdf(Some(TAG_LEAK_INTO_WIFI_DBM), 2000, 2);
    println!("  WiFi median without tag: {:.1} Mbps", without.median());
    println!("  WiFi median with tag:    {:.1} Mbps", with.median());
    println!(
        "  10th percentiles:        {:.1} / {:.1} Mbps",
        without.quantile(0.1),
        with.quantile(0.1)
    );
    println!("  (paper: 37.4 Mbps vs 36.8–37.9 Mbps — no measurable impact)\n");

    // Fig. 16: backscatter throughput with and without WiFi traffic.
    println!("— Does WiFi impact backscatter? (Fig. 16) —");
    for (tech, label) in [
        (CoexistTech::Wifi, "WiFi-riding tag (wideband RX)"),
        (CoexistTech::Zigbee, "ZigBee-riding tag (2 MHz RX)"),
        (CoexistTech::Ble, "Bluetooth-riding tag (1 MHz RX)"),
    ] {
        let r = backscatter_coexistence(tech, 12, 3, 9);
        let mut absent = r.absent;
        let mut present = r.present;
        println!("  {label}");
        println!(
            "    median:     {:>6.1} kbps absent | {:>6.1} kbps with WiFi",
            absent.median() / 1e3,
            present.median() / 1e3
        );
        println!(
            "    10th pct:   {:>6.1} kbps absent | {:>6.1} kbps with WiFi",
            absent.quantile(0.1) / 1e3,
            present.quantile(0.1) / 1e3
        );
    }
    println!("\n(paper: WiFi-riding tail degrades 68→35 kbps for ~10 % of windows;");
    println!(" narrowband ZigBee/Bluetooth links shift by only 1–2 kbps)");
}
