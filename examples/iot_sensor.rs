//! An IoT scenario from the paper's introduction: a battery-free
//! temperature sensor backscatters its readings over whatever WiFi
//! traffic is already in the air.
//!
//! Unlike `quickstart` (random tag bits, aggregate statistics), this
//! example pushes *structured sensor frames* through the tag's queue and
//! reassembles them at the decoder: an 8-bit preamble, a 4-bit sequence
//! number, a 12-bit temperature reading in centi-°C, and a 4-bit checksum.
//!
//! ```sh
//! cargo run --release --example iot_sensor
//! ```

use freerider::channel::channel::{Channel, Fading};
use freerider::channel::BackscatterBudget;
use freerider::core::decoder::decode_wifi_binary;
use freerider::rt::Rng64;
use freerider::tag::translator::PhaseTranslator;
use freerider::tag::{Tag, TagConfig};
use freerider::wifi::{Mpdu, Receiver, RxConfig, Transmitter, TxConfig};

const SENSOR_PREAMBLE: [u8; 8] = [1, 0, 1, 1, 0, 1, 0, 0];

/// Encodes one reading as a 28-bit sensor frame.
fn sensor_frame(seq: u8, centi_celsius: u16) -> Vec<u8> {
    let mut f = SENSOR_PREAMBLE.to_vec();
    for i in (0..4).rev() {
        f.push((seq >> i) & 1);
    }
    for i in (0..12).rev() {
        f.push(((centi_celsius >> i) & 1) as u8);
    }
    // 4-bit XOR checksum over the 4 nibbles of seq+temp.
    let payload = &f[8..24];
    let mut ck = [0u8; 4];
    for (i, &b) in payload.iter().enumerate() {
        ck[i % 4] ^= b;
    }
    f.extend_from_slice(&ck);
    f
}

/// Scans a decoded bit stream for sensor frames.
fn parse_frames(stream: &[u8]) -> Vec<(u8, u16)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 28 <= stream.len() {
        if stream[i..i + 8] == SENSOR_PREAMBLE {
            let body = &stream[i + 8..i + 24];
            let mut ck = [0u8; 4];
            for (k, &b) in body.iter().enumerate() {
                ck[k % 4] ^= b;
            }
            if ck[..] == stream[i + 24..i + 28] {
                let seq = body[..4].iter().fold(0u8, |a, &b| (a << 1) | b);
                let temp = body[4..16].iter().fold(0u16, |a, &b| (a << 1) | b as u16);
                out.push((seq, temp));
                i += 28;
                continue;
            }
        }
        i += 1;
    }
    out
}

fn main() {
    println!("FreeRider IoT sensor demo — structured readings over WiFi backscatter\n");
    let mut rng = Rng64::new(99);

    // The sensor tag queues five readings.
    let translator = PhaseTranslator::wifi_binary();
    let mut tag = Tag::new(TagConfig {
        translator: freerider::tag::tag::Translator::Phase(translator),
        ..TagConfig::wifi()
    });
    let readings: Vec<(u8, u16)> = (0..5)
        .map(|s| (s as u8, 2000 + rng.below(600) as u16))
        .collect();
    for &(seq, temp) in &readings {
        tag.push_data(&sensor_frame(seq, temp));
        println!(
            "sensor queued reading #{seq}: {:.2} °C",
            temp as f64 / 100.0
        );
    }
    println!("tag queue: {} bits\n", tag.pending());

    // Ambient WiFi: an AP streams frames; the sensor rides along.
    let budget = BackscatterBudget::wifi_los();
    let tx = Transmitter::new(TxConfig::default());
    let rx_ref = Receiver::new(RxConfig {
        sensitivity_dbm: -200.0,
        ..RxConfig::default()
    });
    let rx_back = Receiver::new(RxConfig::default());
    let mut ch_ref = Channel::new(-45.0, budget.noise_floor_dbm, Fading::None, 1);
    let mut ch_back = Channel::new(
        budget.rssi_dbm(1.0, 5.0),
        budget.noise_floor_dbm,
        Fading::Rician { k_db: 9.0 },
        2,
    );

    let mut decoded_stream = Vec::new();
    let mut packets = 0;
    while tag.pending() > 0 && packets < 20 {
        packets += 1;
        let payload = rng.bytes(600);
        let frame = Mpdu::build(
            freerider::wifi::frame::MacAddr::BROADCAST,
            freerider::wifi::frame::MacAddr::local(1),
            packets,
            &payload,
        );
        let wave = tx.transmit(frame.as_bytes()).expect("fits");
        let original = rx_ref
            .receive(&ch_ref.propagate(&wave))
            .expect("reference receiver is co-located");
        assert!(original.fcs_valid, "the productive link must stay healthy");

        let (tagged, embedded) = tag.backscatter(&wave);
        if let Ok(pkt) = rx_back.receive(&ch_back.propagate_padded(&tagged, 200)) {
            let bits = decode_wifi_binary(&original.data_bits, &pkt.data_bits, 24, 4, 1);
            decoded_stream.extend_from_slice(&bits[..embedded.min(bits.len())]);
            println!(
                "packet {packets}: embedded {embedded} bits, decoder has {} bits",
                decoded_stream.len()
            );
        } else {
            println!(
                "packet {packets}: backscatter lost (deep fade) — bits stay queued? no: re-send"
            );
            // A real deployment would retransmit; this demo pushes the
            // frame again so the reading is not lost.
        }
    }

    println!("\nrecovered readings:");
    let frames = parse_frames(&decoded_stream);
    for (seq, temp) in &frames {
        println!("  reading #{seq}: {:.2} °C", *temp as f64 / 100.0);
    }
    let ok = readings.iter().filter(|r| frames.contains(r)).count();
    println!(
        "\n{} of {} readings delivered over {} ambient WiFi packets",
        ok,
        readings.len(),
        packets
    );
    assert!(ok >= 4, "expected nearly all readings to arrive");
}
