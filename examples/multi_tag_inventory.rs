//! Warehouse inventory with twenty tags — the paper's multi-tag headline
//! (§4.5 / Fig. 17), run through the integration-level network: real PLM
//! control messages, real tag state machines, the adaptive Framed-Slotted-
//! Aloha coordinator, and real codeword translation in every slot.
//!
//! ```sh
//! cargo run --release --example multi_tag_inventory
//! ```

use freerider::core::network::{TagNetwork, TagNetworkConfig};
use freerider::mac::{MacScheme, NetworkConfig, NetworkSim};

fn main() {
    println!("FreeRider multi-tag inventory — 20 tags, Framed Slotted Aloha\n");

    // Integration network: PLM-announced rounds, per-tag queues.
    let mut net = TagNetwork::new(TagNetworkConfig {
        n_tags: 20,
        backlog_bits: 2000,
        seed: 17,
        ..TagNetworkConfig::default()
    });
    let report = net.run(120);
    println!("rounds run ............... {}", report.rounds);
    println!(
        "announcements heard ...... {} / {}",
        report.announcements_heard,
        report.rounds * 20
    );
    println!("collision slots .......... {}", report.collisions);
    println!("Jain fairness index ...... {:.3}", report.fairness);
    println!("\nper-tag deliveries (bits):");
    for (i, b) in report.per_tag_bits.iter().enumerate() {
        let bar = "#".repeat((*b / 100) as usize);
        println!("  tag {i:>2}: {b:>6}  {bar}");
    }
    assert!(report.per_tag_bits.iter().all(|&b| b > 0));

    // Throughput scaling — the calibrated Fig. 17 model.
    println!("\naggregate throughput vs tag count (calibrated Fig. 17 model):");
    println!("  tags   aloha (kbps)   TDM (kbps)   fairness");
    for n in [4usize, 8, 12, 16, 20] {
        let aloha = NetworkSim::new(NetworkConfig::paper_fig17(n, MacScheme::FramedAloha, 5)).run();
        let tdm = NetworkSim::new(NetworkConfig::paper_fig17(n, MacScheme::Tdm, 5)).run();
        println!(
            "  {n:>4}   {:>12.1}   {:>10.1}   {:>8.3}",
            aloha.aggregate_bps / 1e3,
            tdm.aggregate_bps / 1e3,
            aloha.fairness
        );
    }
    println!("\n(the paper reports ≈7→15 kbps over 4→20 tags, 18 kbps Aloha");
    println!(" asymptote, 40 kbps TDM asymptote, Jain index ≈0.85+)");
}
