//! Signal inspector: watch a FreeRider packet move through the pipeline.
//!
//! Generates one tagged WiFi exchange, dumps IQ traces at each stage
//! (excitation → tag output → receiver input) to `*.friq` files in the
//! system temp directory, and prints envelope summaries — the workspace's
//! answer to "run tcpdump and look".
//!
//! ```sh
//! cargo run --release --example signal_inspector
//! ```

use freerider::channel::channel::{Channel, Fading, Multipath};
use freerider::channel::BackscatterBudget;
use freerider::dsp::trace::IqTrace;
use freerider::tag::translator::PhaseTranslator;
use freerider::wifi::{Mpdu, Receiver, RxConfig, Transmitter, TxConfig};

fn main() {
    println!("FreeRider signal inspector\n");
    let budget = BackscatterBudget::wifi_los();
    let tx = Transmitter::new(TxConfig::default());
    let translator = PhaseTranslator::wifi_binary();

    // Stage 1: the excitation packet.
    let frame = Mpdu::build(
        freerider::wifi::frame::MacAddr::BROADCAST,
        freerider::wifi::frame::MacAddr::local(7),
        1,
        b"productive traffic with a hitchhiking tag",
    );
    let excitation = tx.transmit(frame.as_bytes()).expect("fits");
    let t1 = IqTrace::new(freerider::wifi::SAMPLE_RATE, excitation.clone());
    println!("[1] excitation (802.11g, 6 Mbps):\n{}\n", t1.summary());

    // Stage 2: the tag's codeword translation (alternating tag bits make
    // the phase steps visible in the trace).
    let bits: Vec<u8> = (0..translator.capacity(excitation.len()))
        .map(|i| (i % 2) as u8)
        .collect();
    let (tagged, consumed) = translator.translate(&excitation, &bits);
    let t2 = IqTrace::new(freerider::wifi::SAMPLE_RATE, tagged.clone());
    println!(
        "[2] after the tag ({consumed} tag bits embedded):\n{}\n",
        t2.summary()
    );

    // Stage 3: through the hallway to the backscatter receiver.
    let mut ch = Channel::new(
        budget.rssi_dbm(1.0, 10.0),
        budget.noise_floor_dbm,
        Fading::Rician { k_db: 12.0 },
        42,
    )
    .with_multipath(Multipath::hallway_20msps());
    let rx_wave = ch.propagate_padded(&tagged, 300);
    let t3 = IqTrace::new(freerider::wifi::SAMPLE_RATE, rx_wave.clone());
    println!(
        "[3] at the receiver (10 m, multipath + noise):\n{}\n",
        t3.summary()
    );

    // Dump all three for offline analysis.
    let dir = std::env::temp_dir();
    for (name, t) in [("excitation", &t1), ("tagged", &t2), ("received", &t3)] {
        let path = dir.join(format!("freerider_{name}.friq"));
        t.save(&path).expect("writable temp dir");
        println!("wrote {}", path.display());
    }

    // And prove the receiver still gets it.
    let rx = Receiver::new(RxConfig::default());
    let pkt = rx.receive(&rx_wave).expect("decodable at 10 m");
    println!(
        "\nreceiver: rate {:?}, {} B PSDU, FCS {} (broken by design — the tag rode on it), RSSI {:.1} dBm",
        pkt.signal.rate,
        pkt.signal.length,
        if pkt.fcs_valid { "ok" } else { "invalid" },
        pkt.rssi_dbm
    );
    let reload = IqTrace::load(&dir.join("freerider_received.friq")).expect("round-trip");
    println!(
        "trace round-trip: {} samples reloaded",
        reload.samples.len()
    );
}
