#!/usr/bin/env sh
# Hermetic verification: everything must pass offline, with no network and
# no registry — the workspace has zero external dependencies.
#
#   sh scripts/verify.sh
set -eu
cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test --workspace -q --offline"
cargo test --workspace -q --offline

echo "==> cargo fmt --check"
cargo fmt --check

echo "verify: OK"
