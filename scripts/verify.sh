#!/usr/bin/env sh
# Hermetic verification: everything must pass offline, with no network and
# no registry — the workspace has zero external dependencies.
#
#   sh scripts/verify.sh
set -eu
cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test --workspace -q --offline"
cargo test --workspace -q --offline

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --offline -- -D warnings"
cargo clippy --workspace --offline -- -D warnings

echo "==> repro --quick all --json smoke"
./target/release/repro --quick all --json /tmp/freerider_repro_smoke.json >/dev/null
python3 - <<'EOF'
import json
with open("/tmp/freerider_repro_smoke.json") as f:
    doc = json.load(f)
assert doc["schema"] == "freerider-repro/1", doc.get("schema")
assert doc["experiments"], "no experiments in repro JSON"
for e in doc["experiments"]:
    assert e["name"] and e["output"], e.get("name")
print(f"repro JSON OK: {len(doc['experiments'])} experiments")
EOF

echo "verify: OK"
