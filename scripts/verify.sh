#!/usr/bin/env sh
# Hermetic verification: everything must pass offline, with no network and
# no registry — the workspace has zero external dependencies.
#
#   sh scripts/verify.sh
set -eu
cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test --workspace -q --offline"
cargo test --workspace -q --offline

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --offline -- -D warnings"
cargo clippy --workspace --offline -- -D warnings

echo "==> freerider-lint --selftest (every rule trips on its embedded fixture)"
cargo run --release --offline -p freerider-lint -- --selftest

echo "==> freerider-lint --workspace (determinism / panic / unsafe / hot-path contract)"
cargo run --release --offline -p freerider-lint -- \
    --workspace --json /tmp/freerider_lint.json
python3 - <<'EOF'
import json
with open("/tmp/freerider_lint.json") as f:
    doc = json.load(f)
assert doc["schema"] == "freerider-lint/2", doc.get("schema")
assert doc["ok"] is True, "lint report not ok"
assert doc["newFindings"] == 0, f"{doc['newFindings']} new lint finding(s)"
assert doc["filesScanned"] > 100, doc["filesScanned"]
slugs = {r["slug"] for r in doc["rules"]}
expected = {"wallclock", "hash-collections", "env-registry",
            "panic", "unsafe-audit", "hot-path-alloc", "atomic-ordering",
            "thread-containment", "wire-exhaustive", "pragma"}
assert expected <= slugs, f"missing rules: {expected - slugs}"
ids = {r["id"] for r in doc["rules"]}
assert {"A1", "O1", "T1", "E1"} <= ids, f"missing rule ids: {ids}"
print(f"lint JSON OK: {doc['filesScanned']} files, {len(slugs)} rules, "
      f"{doc['newFindings']} new findings")
EOF

echo "==> repro --quick all --json smoke"
./target/release/repro --quick all --json /tmp/freerider_repro_smoke.json >/dev/null
python3 - <<'EOF'
import json
with open("/tmp/freerider_repro_smoke.json") as f:
    doc = json.load(f)
assert doc["schema"] == "freerider-repro/2", doc.get("schema")
assert doc["experiments"], "no experiments in repro JSON"
for e in doc["experiments"]:
    assert e["name"] and e["output"], e.get("name")
    assert "forensics" in e, f"{e['name']}: missing forensics section"
    assert isinstance(e["forensics"]["packets"], list)
print(f"repro JSON OK: {len(doc['experiments'])} experiments")
EOF

echo "==> repro --trace smoke (flight recorder + Chrome export)"
./target/release/repro --quick --trace /tmp/freerider_trace_smoke.json \
    --json /tmp/freerider_repro_traced.json fig10 >/dev/null
python3 - <<'EOF'
import json
with open("/tmp/freerider_trace_smoke.json") as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert events, "empty Chrome trace"
# At least one complete span tree: a packet-level X span containing a
# stage-level X span on the same pid/tid.
packets = [e for e in events if e.get("ph") == "X" and "#" in e.get("name", "")]
stages = [e for e in events if e.get("ph") == "X" and "#" not in e.get("name", "")]
assert packets, "no packet spans in Chrome trace"
nested = any(
    p["pid"] == s["pid"] and p["tid"] == s["tid"]
    and p["ts"] <= s["ts"] and s["ts"] + s["dur"] <= p["ts"] + p["dur"]
    for p in packets for s in stages
)
assert nested, "no stage span nested inside a packet span"
with open("/tmp/freerider_repro_traced.json") as f:
    traced = json.load(f)
forensic_packets = sum(
    len(e["forensics"]["packets"]) for e in traced["experiments"]
)
print(f"trace OK: {len(events)} events, {len(packets)} packet spans, "
      f"{forensic_packets} forensic packets")
EOF

echo "==> repro --profile smoke (stage profiler: schema, counters, tree invariant)"
./target/release/repro --quick --profile /tmp/freerider_profile_smoke.json \
    fig10 >/dev/null 2>&1
python3 - <<'EOF'
import json
with open("/tmp/freerider_profile_smoke.json") as f:
    doc = json.load(f)
assert doc["schema"] == "freerider-profile/1", doc.get("schema")
stages = doc["stages"]
assert stages, "empty profile report"
by_path = {s["path"]: s for s in stages}
assert "wifi.rx" in by_path, sorted(by_path)
# Deterministic work counters must be present and nonzero somewhere.
work_total = sum(sum(s["work"].values()) for s in stages)
assert work_total > 0, "no work counters recorded"
viterbi = by_path.get("wifi.rx/decode/viterbi")
assert viterbi and viterbi["work"].get("viterbi.acs_ops", 0) > 0, viterbi
# Tree invariant: each parent's recorded time bounds the sum of its
# children (scope nesting guarantees this; floor-truncation only helps).
for path, s in by_path.items():
    kids = [c for p, c in by_path.items()
            if p.startswith(path + "/") and "/" not in p[len(path) + 1:]]
    child_ns = sum(c["timing"]["total_ns"] for c in kids)
    assert child_ns <= s["timing"]["total_ns"], \
        f"{path}: children {child_ns}ns exceed parent {s['timing']['total_ns']}ns"
print(f"profile OK: {len(stages)} stages, {work_total} work units, "
      f"tree invariant holds")
EOF

echo "==> bench_diff selftest (per-stage regression gate gates)"
python3 scripts/bench_diff.py --selftest

echo "==> lane sweep smoke (A/B rows present, defaults are measured winners)"
./target/release/bench-baseline --quick --lanes all \
    --out /tmp/freerider_bench_lanes.json >/dev/null
# Quick-budget medians are noisier than the committed full run; the
# sweeps separate their winners by ~2x, so a widened slack still catches
# a genuinely wrong compiled-in default without flaking on jitter.
FREERIDER_LANE_SLACK=25 python3 scripts/bench_diff.py \
    --assert-lanes /tmp/freerider_bench_lanes.json

echo "==> planned-FFT selftest (bit-identical to reference)"
./target/release/bench-baseline --selftest-fft

echo "==> freerider-serve smoke (ephemeral port, streamed job, clean shutdown)"
SERVE_LOG=/tmp/freerider_serve_smoke.log
./target/release/freerider serve --addr 127.0.0.1:0 --threads 1 >"$SERVE_LOG" &
SERVE_PID=$!
# Wait for the startup line that carries the ephemeral port.
SERVE_ADDR=""
for _ in $(seq 1 50); do
    SERVE_ADDR=$(sed -n 's/^freerider-serve listening on //p' "$SERVE_LOG")
    [ -n "$SERVE_ADDR" ] && break
    sleep 0.1
done
[ -n "$SERVE_ADDR" ] || { echo "serve smoke: server never announced its port"; kill "$SERVE_PID" 2>/dev/null; exit 1; }
./target/release/freerider-client --addr "$SERVE_ADDR" \
    submit --tags 50 --rounds 25 --snapshot-every 10 --watch \
    >/tmp/freerider_serve_stream.log
PROGRESS=$(grep -c '^progress ' /tmp/freerider_serve_stream.log)
SNAPSHOTS=$(grep -c '^snapshot ' /tmp/freerider_serve_stream.log)
[ "$PROGRESS" -ge 10 ] || { echo "serve smoke: only $PROGRESS progress frames (want >= 10)"; kill "$SERVE_PID" 2>/dev/null; exit 1; }
[ "$SNAPSHOTS" -ge 2 ] || { echo "serve smoke: only $SNAPSHOTS snapshots (want >= 2)"; kill "$SERVE_PID" 2>/dev/null; exit 1; }
grep -q '^result: ' /tmp/freerider_serve_stream.log || { echo "serve smoke: no final result line"; kill "$SERVE_PID" 2>/dev/null; exit 1; }
# Stats smoke: the raw Stats payload must carry the right schema and
# nonzero counters for the traffic the streamed job just generated.
./target/release/freerider-client --addr "$SERVE_ADDR" stats --json \
    >/tmp/freerider_serve_stats.json \
    || { echo "serve smoke: stats request failed"; kill "$SERVE_PID" 2>/dev/null; exit 1; }
python3 - <<'EOF' || { kill "$SERVE_PID" 2>/dev/null; exit 1; }
import json
with open("/tmp/freerider_serve_stats.json") as f:
    doc = json.load(f)
assert doc["schema"] == "freerider-serve-stats/1", doc.get("schema")
c = doc["counters"]
assert c.get("frames.rx.submit_job", 0) >= 1, c
assert c.get("jobs.completed", 0) >= 1, c
assert c.get("sessions.accepted", 0) >= 1, c
assert c.get("bytes.tx", 0) > 0, c
assert "gauges" in doc and "latency" in doc, sorted(doc)
print(f"stats JSON OK: {len(c)} counters, "
      f"{c['frames.rx.submit_job']} submit(s), {c['jobs.completed']} job(s) done")
EOF
./target/release/freerider-client --addr "$SERVE_ADDR" health >/dev/null \
    || { echo "serve smoke: health request failed"; kill "$SERVE_PID" 2>/dev/null; exit 1; }
./target/release/freerider-client --addr "$SERVE_ADDR" shutdown >/dev/null
wait "$SERVE_PID"
echo "serve smoke OK: $PROGRESS progress frames, $SNAPSHOTS snapshots, stats + health served, clean shutdown"

echo "==> bench baseline (diff vs benchmarks/latest.json)"
# Full mode, not --quick: the committed baseline is a full run, and the
# kernel rows of bench_diff fail hard, so the comparison must be
# like-for-like. --warn-only downgrades only the experiment wall-clock
# rows, which are scheduling-noise-dominated on shared machines.
./target/release/bench-baseline --out /tmp/freerider_bench_new.json >/dev/null
python3 scripts/bench_diff.py --warn-only benchmarks/latest.json /tmp/freerider_bench_new.json

echo "verify: OK"
