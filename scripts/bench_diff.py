#!/usr/bin/env python3
"""Diff a fresh bench-baseline JSON against the committed baseline.

    python3 scripts/bench_diff.py <old.json> <new.json> [--warn-only]
    python3 scripts/bench_diff.py --assert-lanes <new.json>
    python3 scripts/bench_diff.py --selftest

`--assert-lanes` audits the lane-width A/B evidence instead of diffing:
the document must carry a `lanes` section, every advertised width must
have its measured `scalar`/`lanes_N` kernel row, and each compiled-in
`selected` default must be the measured winner of its sweep (within a
noise slack, default 10% -- override with FREERIDER_LANE_SLACK). This is
how verify.sh keeps `DEFAULT_VITERBI_LANES`/`DEFAULT_CORR_LANES` honest:
a default that loses its own committed A/B sweep fails CI.

Compares kernel median times, per-profile-stage p50 times, and
per-experiment wall-clock between two `freerider-bench/1` documents. A
metric regresses when the new value exceeds the old by more than the
threshold (percent, default 50 -- wall-clock benchmarks are noisy;
override with FREERIDER_BENCH_THRESHOLD).

Kernel and stage regressions always fail (exit 1): the PHY hot paths are
the product, and a silent 2x loss there is exactly what this gate exists
to catch. Stage rows come from `bench-baseline`'s profile-on WiFi RX run
on both sides, so the comparison is like for like (profiling overhead is
present in both). `--warn-only` downgrades only the experiment
wall-clock rows, which bundle scheduling noise and workload drift on top
of kernel time. A missing old baseline is still fine (first run: nothing
to compare yet).

`--selftest` exercises the gate on synthetic documents -- a clean pair
must pass and an injected per-stage regression must exit 1 -- and is run
by scripts/verify.sh so the gate itself cannot silently rot.
"""

import json
import os
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "freerider-bench/1":
        sys.exit(f"bench_diff: {path}: unexpected schema {doc.get('schema')!r}")
    return doc


def diff(old, new, threshold, warn_only):
    """Returns (exit code, printed lines) for one old/new document pair."""
    rows = []  # (metric, hard failure?, old value, new value, unit)
    for name, k in new.get("kernels", {}).items():
        prev = old.get("kernels", {}).get(name)
        if prev:
            # `lint/` rows track analyzer wall-clock, not product hot
            # paths: downgradable by --warn-only like experiment rows.
            hard = not name.startswith("lint/")
            rows.append((f"kernel {name}", hard, prev["median_ns"], k["median_ns"], "ns"))
    for name, s in new.get("stages", {}).items():
        prev = old.get("stages", {}).get(name)
        if prev and prev.get("p50_ns"):
            rows.append((f"stage {name}", True, prev["p50_ns"], s["p50_ns"], "ns"))
    for name, e in new.get("experiments", {}).items():
        prev = old.get("experiments", {}).get(name)
        if prev:
            rows.append((f"experiment {name}", False, prev["wall_s"], e["wall_s"], "s"))

    lines = []
    if not rows:
        lines.append("bench_diff: no overlapping metrics between baselines")
        return 0, lines

    hard_regressions = 0
    soft_regressions = 0
    lines.append(f"bench_diff: {old.get('git_sha')} -> {new.get('git_sha')}"
                 f" (threshold {threshold:g}%)")
    for metric, hard, before, after, unit in rows:
        delta = (after / before - 1.0) * 100.0 if before else 0.0
        flag = ""
        if delta > threshold:
            if hard or not warn_only:
                flag = "  << REGRESSION"
                hard_regressions += 1
            else:
                flag = "  << regression (warn-only)"
                soft_regressions += 1
        lines.append(f"  {metric:<40} {before:>12g} -> {after:>12g} {unit}"
                     f"  ({delta:+6.1f}%){flag}")

    if soft_regressions:
        lines.append(f"bench_diff: {soft_regressions} experiment wall-clock metric(s)"
                     f" regressed beyond {threshold:g}% (downgraded by --warn-only)")
    if hard_regressions:
        lines.append(f"bench_diff: {hard_regressions} metric(s) regressed"
                     f" beyond {threshold:g}%")
        return 1, lines
    lines.append("bench_diff: OK")
    return 0, lines


# Lane-sweep groups: `lanes` section key -> kernel row prefix. Each group's
# A/B rows are `<prefix>/scalar` and `<prefix>/lanes_<N>` for every
# advertised width.
LANE_GROUPS = {"viterbi": "coding/viterbi", "corr": "dsp/ltf_corr"}


def assert_lanes(doc, slack):
    """Returns (exit code, lines): every lane A/B row present and each
    `selected` default within `slack` percent of its sweep's winner
    (the scalar comparator competes too -- a lane default that loses to
    scalar is also wrong)."""
    lines = []
    failures = 0
    lanes = doc.get("lanes")
    if not lanes:
        return 1, ["bench_diff: no `lanes` section "
                   "(run bench-baseline with --lanes all)"]
    kernels = doc.get("kernels", {})
    for group, prefix in sorted(LANE_GROUPS.items()):
        info = lanes.get(group)
        if not info:
            lines.append(f"  lanes.{group}: section MISSING")
            failures += 1
            continue
        widths = info.get("widths", [])
        selected = info.get("selected")
        rows = {}
        missing = 0
        for label in ["scalar"] + [f"lanes_{w}" for w in widths]:
            k = kernels.get(f"{prefix}/{label}")
            if k is None:
                lines.append(f"  lanes.{group}: A/B row {prefix}/{label} MISSING")
                missing += 1
            else:
                rows[label] = k["median_ns"]
        if missing or not widths:
            failures += missing or 1
            continue
        sel_label = f"lanes_{selected}"
        if sel_label not in rows:
            lines.append(f"  lanes.{group}: selected width {selected}"
                         f" has no measured row")
            failures += 1
            continue
        best_label = min(rows, key=rows.get)
        best, sel = rows[best_label], rows[sel_label]
        margin = (sel / best - 1.0) * 100.0 if best else 0.0
        if margin > slack:
            lines.append(f"  lanes.{group}: selected {sel_label} ({sel} ns) is"
                         f" {margin:.1f}% behind winner {best_label} ({best} ns)"
                         f" -- beyond {slack:g}% noise slack  << NOT THE WINNER")
            failures += 1
        else:
            lines.append(f"  lanes.{group}: selected {sel_label} {sel} ns vs"
                         f" best {best_label} {best} ns ({margin:+.1f}%) ok")
    if failures:
        lines.append(f"bench_diff: --assert-lanes: {failures} failure(s)")
        return 1, lines
    lines.append("bench_diff: --assert-lanes OK"
                 " (A/B rows present, defaults are measured winners)")
    return 0, lines


def selftest():
    """The gate gates: a clean pair passes, an injected stage regression fails."""
    base = {
        "schema": "freerider-bench/1",
        "git_sha": "selftest-old",
        "kernels": {
            "wifi/rx_1000B": {"median_ns": 1_000_000},
            "lint/workspace_scan": {"median_ns": 100_000_000},
        },
        "stages": {
            "wifi.rx": {"p50_ns": 900_000, "count": 10},
            "wifi.rx/decode/viterbi": {"p50_ns": 400_000, "count": 10},
        },
        "experiments": {"fig10": {"wall_s": 1.0}},
    }
    clean = json.loads(json.dumps(base))
    clean["git_sha"] = "selftest-new"
    code, _ = diff(base, clean, 50.0, warn_only=False)
    if code != 0:
        print("bench_diff selftest: FAIL -- identical baselines flagged as regression")
        return 1

    regressed = json.loads(json.dumps(clean))
    regressed["stages"]["wifi.rx/decode/viterbi"]["p50_ns"] = 1_000_000  # +150%
    code, lines = diff(base, regressed, 50.0, warn_only=False)
    if code != 1:
        print("bench_diff selftest: FAIL -- injected stage regression not caught")
        return 1
    if not any("stage wifi.rx/decode/viterbi" in l and "REGRESSION" in l for l in lines):
        print("bench_diff selftest: FAIL -- regression caught but not attributed to the stage row")
        return 1

    # An injected regression must still fail under --warn-only: stage rows
    # are hard, only experiment rows are downgradable.
    code, _ = diff(base, regressed, 50.0, warn_only=True)
    if code != 1:
        print("bench_diff selftest: FAIL -- --warn-only must not soften stage rows")
        return 1

    # Experiment rows, by contrast, do soften.
    slow_exp = json.loads(json.dumps(clean))
    slow_exp["experiments"]["fig10"]["wall_s"] = 5.0
    code, _ = diff(base, slow_exp, 50.0, warn_only=True)
    if code != 0:
        print("bench_diff selftest: FAIL -- --warn-only must downgrade experiment rows")
        return 1

    # The analyzer wall-clock row softens too (not a product hot path)...
    slow_lint = json.loads(json.dumps(clean))
    slow_lint["kernels"]["lint/workspace_scan"]["median_ns"] = 500_000_000  # +400%
    code, _ = diff(base, slow_lint, 50.0, warn_only=True)
    if code != 0:
        print("bench_diff selftest: FAIL -- --warn-only must downgrade lint/ kernel rows")
        return 1
    # ...but still fails a strict (no --warn-only) run.
    code, _ = diff(base, slow_lint, 50.0, warn_only=False)
    if code != 1:
        print("bench_diff selftest: FAIL -- strict run must gate lint/ kernel rows")
        return 1

    # --assert-lanes: a document whose selected widths win their sweeps
    # passes; a missing A/B row and a selected width that loses beyond
    # the noise slack both fail.
    lanes_doc = {
        "schema": "freerider-bench/1",
        "git_sha": "selftest-lanes",
        "kernels": {
            "coding/viterbi/scalar": {"median_ns": 100_000},
            "coding/viterbi/lanes_2": {"median_ns": 40_000},
            "coding/viterbi/lanes_4": {"median_ns": 70_000},
            "coding/viterbi/lanes_8": {"median_ns": 90_000},
            "dsp/ltf_corr/scalar": {"median_ns": 80_000},
            "dsp/ltf_corr/lanes_2": {"median_ns": 82_000},
            "dsp/ltf_corr/lanes_4": {"median_ns": 81_000},
            "dsp/ltf_corr/lanes_8": {"median_ns": 35_000},
        },
        "lanes": {
            "viterbi": {"selected": 2, "widths": [2, 4, 8]},
            "corr": {"selected": 8, "widths": [2, 4, 8]},
        },
    }
    code, _ = assert_lanes(lanes_doc, slack=10.0)
    if code != 0:
        print("bench_diff selftest: FAIL -- winning lane defaults flagged")
        return 1

    no_row = json.loads(json.dumps(lanes_doc))
    del no_row["kernels"]["coding/viterbi/lanes_4"]
    code, lines = assert_lanes(no_row, slack=10.0)
    if code != 1 or not any("lanes_4 MISSING" in l for l in lines):
        print("bench_diff selftest: FAIL -- missing A/B row not caught")
        return 1

    loser = json.loads(json.dumps(lanes_doc))
    loser["lanes"]["viterbi"]["selected"] = 8  # 90 us vs 40 us winner
    code, lines = assert_lanes(loser, slack=10.0)
    if code != 1 or not any("NOT THE WINNER" in l for l in lines):
        print("bench_diff selftest: FAIL -- losing selected width not caught")
        return 1

    near_tie = json.loads(json.dumps(lanes_doc))
    near_tie["kernels"]["coding/viterbi/lanes_4"]["median_ns"] = 41_000
    near_tie["lanes"]["viterbi"]["selected"] = 4  # 2.5% behind: within noise
    code, _ = assert_lanes(near_tie, slack=10.0)
    if code != 0:
        print("bench_diff selftest: FAIL -- within-slack selected width flagged")
        return 1

    print("bench_diff selftest: OK (stage regression gated, warn-only semantics"
          " hold, lane assertions gate)")
    return 0


def main(argv):
    if "--selftest" in argv:
        return selftest()
    args = [a for a in argv if not a.startswith("--")]
    if "--assert-lanes" in argv:
        if len(args) != 1:
            sys.exit("bench_diff: --assert-lanes takes exactly one JSON document")
        slack = float(os.environ.get("FREERIDER_LANE_SLACK", "10"))
        code, lines = assert_lanes(load(args[0]), slack)
        print("\n".join(lines))
        return code
    warn_only = "--warn-only" in argv
    if len(args) != 2:
        sys.exit(__doc__.strip())
    old_path, new_path = args
    threshold = float(os.environ.get("FREERIDER_BENCH_THRESHOLD", "50"))

    if not os.path.exists(old_path):
        print(f"bench_diff: no baseline at {old_path} (first run), nothing to diff")
        return 0
    old, new = load(old_path), load(new_path)
    code, lines = diff(old, new, threshold, warn_only)
    print("\n".join(lines))
    return code


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
