#!/usr/bin/env python3
"""Diff a fresh bench-baseline JSON against the committed baseline.

    python3 scripts/bench_diff.py <old.json> <new.json> [--warn-only]

Compares kernel median times and per-experiment wall-clock between two
`freerider-bench/1` documents. A metric regresses when the new value
exceeds the old by more than the threshold (percent, default 50 --
wall-clock benchmarks are noisy; override with FREERIDER_BENCH_THRESHOLD).

Kernel regressions always fail (exit 1): the PHY hot paths are the
product, and a silent 2x loss there is exactly what this gate exists to
catch. `--warn-only` downgrades only the experiment wall-clock rows,
which bundle scheduling noise and workload drift on top of kernel time.
A missing old baseline is still fine (first run: nothing to compare yet).
"""

import json
import os
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "freerider-bench/1":
        sys.exit(f"bench_diff: {path}: unexpected schema {doc.get('schema')!r}")
    return doc


def main(argv):
    args = [a for a in argv if not a.startswith("--")]
    warn_only = "--warn-only" in argv
    if len(args) != 2:
        sys.exit(__doc__.strip())
    old_path, new_path = args
    threshold = float(os.environ.get("FREERIDER_BENCH_THRESHOLD", "50"))

    if not os.path.exists(old_path):
        print(f"bench_diff: no baseline at {old_path} (first run), nothing to diff")
        return 0
    old, new = load(old_path), load(new_path)

    rows = []  # (metric, hard failure?, old value, new value, unit)
    for name, k in new.get("kernels", {}).items():
        prev = old.get("kernels", {}).get(name)
        if prev:
            rows.append((f"kernel {name}", True, prev["median_ns"], k["median_ns"], "ns"))
    for name, e in new.get("experiments", {}).items():
        prev = old.get("experiments", {}).get(name)
        if prev:
            rows.append((f"experiment {name}", False, prev["wall_s"], e["wall_s"], "s"))

    if not rows:
        print("bench_diff: no overlapping metrics between baselines")
        return 0

    hard_regressions = 0
    soft_regressions = 0
    print(f"bench_diff: {old.get('git_sha')} -> {new.get('git_sha')}"
          f" (threshold {threshold:g}%)")
    for metric, hard, before, after, unit in rows:
        delta = (after / before - 1.0) * 100.0 if before else 0.0
        flag = ""
        if delta > threshold:
            if hard or not warn_only:
                flag = "  << REGRESSION"
                hard_regressions += 1
            else:
                flag = "  << regression (warn-only)"
                soft_regressions += 1
        print(f"  {metric:<40} {before:>12g} -> {after:>12g} {unit}"
              f"  ({delta:+6.1f}%){flag}")

    if soft_regressions:
        print(f"bench_diff: {soft_regressions} experiment wall-clock metric(s)"
              f" regressed beyond {threshold:g}% (downgraded by --warn-only)")
    if hard_regressions:
        print(f"bench_diff: {hard_regressions} metric(s) regressed beyond {threshold:g}%")
        return 1
    print("bench_diff: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
